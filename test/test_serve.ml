(* Tests for the benchmark service (Sb_serve): the wire protocol must
   round-trip specs and rows and reject malformed or wrong-schema frames
   with precise errors; the daemon — driven here one select-step at a
   time, in-process — must stream rows, deduplicate identical cells
   through the shared store, bound each client's in-flight window, survive
   mid-run cancellation with the pool and cache left consistent, and
   reject bad jobs atomically. *)

module Json = Sb_util.Json
module Protocol = Sb_serve.Protocol
module Serve = Sb_serve.Serve

let contains haystack needle =
  let n = String.length needle in
  let rec loop i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || loop (i + 1)
  in
  loop 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%S in %S)" what needle haystack)
    true (contains haystack needle)

let tmp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))
  in
  Sb_jobs.Cache.mkdir_p dir;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let spec ?(bench = "System Call") ?(engine = "interp")
    ?(arch = Sb_isa.Arch_sig.Sba) ?iters ?(repeats = 1) () =
  {
    Protocol.sp_bench = bench;
    sp_engine = engine;
    sp_arch = arch;
    sp_iters = iters;
    sp_repeats = repeats;
  }

(* ------------------------------------------------------------------ *)
(* Protocol                                                             *)
(* ------------------------------------------------------------------ *)

let test_spec_round_trip () =
  let specs =
    [
      spec ();
      spec ~bench:"Small Blocks" ~engine:"dbt@v2.0.0" ~arch:Sb_isa.Arch_sig.Vlx
        ~iters:123 ~repeats:3 ();
    ]
  in
  List.iter
    (fun sp ->
      match Protocol.spec_of_json (Protocol.spec_to_json sp) with
      | Ok sp' ->
        Alcotest.(check bool) "spec round-trips" true (sp = sp')
      | Error msg -> Alcotest.fail msg)
    specs

let test_spec_key_canonical () =
  (* alias spellings of the same engine share a content address once
     canonicalised — the property the serve dedup relies on *)
  Alcotest.(check string)
    "gem5 canonicalises" "detailed"
    (Simbench.Engines.canonical_name "gem5");
  Alcotest.(check string)
    "hw canonicalises" "native"
    (Simbench.Engines.canonical_name "hw");
  let k e =
    Protocol.spec_key
      (spec ~engine:(Simbench.Engines.canonical_name e) ~iters:50 ())
  in
  Alcotest.(check string) "alias keys collide" (k "gem5") (k "detailed");
  Alcotest.(check bool) "different engines differ" true (k "interp" <> k "dbt");
  Alcotest.(check bool)
    "iters moves the key" true
    (Protocol.spec_key (spec ~iters:50 ())
    <> Protocol.spec_key (spec ~iters:51 ()))

let test_row_round_trip () =
  let row =
    {
      Sb_report.Experiments.row_cell = "System Call";
      row_engine = "interp";
      row_arch = "sba";
      row_iters = 50;
      row_repeats = 2;
      row_seconds = 0.125;
      row_mean_seconds = 0.25;
      row_samples = [ 0.25; 0.125 ];
      row_kernel_insns = 4242;
      row_perf = [ ("Instructions", 4242); ("Loads", 7) ];
      row_status = "ok";
      row_note = "";
    }
  in
  match Protocol.row_of_json (Protocol.row_to_json row) with
  | Ok row' -> Alcotest.(check bool) "row round-trips" true (row = row')
  | Error msg -> Alcotest.fail msg

let test_request_round_trip () =
  let reqs =
    [
      Protocol.Submit { id = "j1"; cells = [ spec ~iters:9 () ]; resume = false };
      Protocol.Submit { id = "j1"; cells = [ spec ~iters:9 () ]; resume = true };
      Protocol.Cancel { id = "j1" };
      Protocol.Ping { seq = 42 };
      Protocol.Status;
      Protocol.Dump;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match
        Protocol.request_of_line (Json.to_string (Protocol.request_to_json req))
      with
      | Ok req' -> Alcotest.(check bool) "request round-trips" true (req = req')
      | Error msg -> Alcotest.fail msg)
    reqs

let test_response_round_trip () =
  let resps =
    [
      Protocol.Hello { session = "s1-7"; heartbeat = 10.0; miss_limit = 3 };
      Protocol.Ack { id = "j"; cells = 3 };
      Protocol.Row
        {
          id = "j";
          key = "abc123";
          cached = true;
          cell = Json.Obj [ ("cell", Json.String "x") ];
        };
      Protocol.Pong { seq = 42 };
      Protocol.Job_done { id = "j"; rows = 2; failed = 1 };
      Protocol.Cancelled { id = "j"; dropped = 4 };
      Protocol.Status_report (Json.Obj [ ("clients", Json.Int 1) ]);
      Protocol.Run_dump { source = "serve"; cells = [ Json.Null ] };
      Protocol.Error_msg { id = Some "j"; message = "nope" };
      Protocol.Error_msg { id = None; message = "nope" };
      Protocol.Bye { reason = "stopping" };
    ]
  in
  List.iter
    (fun resp ->
      match
        Protocol.response_of_line
          (Json.to_string (Protocol.response_to_json resp))
      with
      | Ok resp' ->
        Alcotest.(check bool) "response round-trips" true (resp = resp')
      | Error msg -> Alcotest.fail msg)
    resps

let test_malformed_frame_has_position () =
  match Protocol.request_of_line "{\"schema\": \"x\", " with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error msg ->
    check_contains "malformed" msg "malformed frame";
    check_contains "line" msg "line 1";
    check_contains "column" msg "column"

let test_schema_version_rejected () =
  let frame =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.String "simbench-serve-json-0");
           ("op", Json.String "status");
         ])
  in
  (match Protocol.request_of_line frame with
  | Ok _ -> Alcotest.fail "accepted an old schema"
  | Error msg ->
    check_contains "names the offender" msg "simbench-serve-json-0";
    check_contains "names the expectation" msg Protocol.schema);
  match Protocol.request_of_line "{\"op\": \"status\"}" with
  | Ok _ -> Alcotest.fail "accepted an untagged frame"
  | Error msg -> check_contains "missing schema" msg "schema"

let test_v1_schema_migration_error () =
  (* the retired protocol 1 gets a dedicated migration message, not a
     generic mismatch *)
  let frame =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.String Protocol.schema_v1);
           ("op", Json.String "status");
         ])
  in
  match Protocol.request_of_line frame with
  | Ok _ -> Alcotest.fail "accepted protocol 1"
  | Error msg ->
    check_contains "names the old schema" msg Protocol.schema_v1;
    check_contains "tells what changed" msg "heartbeats";
    check_contains "points at the upgrade" msg "upgrade the client"

(* ------------------------------------------------------------------ *)
(* In-process server harness                                            *)
(* ------------------------------------------------------------------ *)

(* in-process tclients are raw sockets that never ping, so the harness
   disables heartbeat dropping by default; the heartbeat tests opt in *)
let with_server ?(jobs = 1) ?(window = 0) ?(heartbeat = 0.0) ?(miss_limit = 3)
    ?cache_dir f =
  let dir = tmp_dir "sb_serve" in
  let path = Filename.concat dir "s.sock" in
  let cfg =
    {
      Serve.default_config with
      Serve.unix_path = Some path;
      jobs;
      window;
      heartbeat;
      miss_limit;
      cache_dir;
    }
  in
  let t = Serve.create cfg in
  Fun.protect
    ~finally:(fun () ->
      Serve.close t;
      rm_rf dir)
    (fun () -> f t path)

type tclient = {
  fd : Unix.file_descr;
  partial : Buffer.t;
  mutable session : string;  (* from the hello frame *)
  mutable frames : Protocol.response list;  (* arrival order *)
}

let submit ?(resume = false) id cells = Protocol.Submit { id; cells; resume }

let tclose tc = try Unix.close tc.fd with Unix.Unix_error _ -> ()

let tsend_raw tc line =
  let data = line ^ "\n" in
  let n = Unix.write_substring tc.fd data 0 (String.length data) in
  Alcotest.(check int) "frame written whole" (String.length data) n

let tsend tc req = tsend_raw tc (Json.to_string (Protocol.request_to_json req))

let tread tc =
  let buf = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read tc.fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes tc.partial buf 0 n;
      slurp ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
  in
  slurp ();
  let data = Buffer.contents tc.partial in
  Buffer.clear tc.partial;
  let rec split start =
    match String.index_from_opt data start '\n' with
    | None ->
      Buffer.add_substring tc.partial data start (String.length data - start)
    | Some nl ->
      let line = String.sub data start (nl - start) in
      (match Protocol.response_of_line line with
      | Ok resp -> tc.frames <- tc.frames @ [ resp ]
      | Error msg -> Alcotest.fail ("unparsable server frame: " ^ msg));
      split (nl + 1)
  in
  split 0

let tconnect server path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  let tc = { fd; partial = Buffer.create 256; session = ""; frames = [] } in
  (* every connection opens with the server's hello; consume it so the
     tests below see only the frames they provoked *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec hello () =
    Serve.step ~timeout:0.01 server;
    tread tc;
    match tc.frames with
    | Protocol.Hello { session; _ } :: rest ->
      tc.session <- session;
      tc.frames <- rest
    | [] when Unix.gettimeofday () < deadline -> hello ()
    | _ -> Alcotest.fail "expected a hello frame first"
  in
  hello ();
  tc

let wait_for ?(timeout = 60.0) ?(read = true) server tc pred what =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if read then tread tc;
    if List.exists pred tc.frames then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Serve.step ~timeout:0.02 server;
      go ()
    end
  in
  go ()

let rows_of tc id =
  List.filter_map
    (function
      | Protocol.Row { id = rid; key = _; cached; cell } when rid = id ->
        Some (cached, cell)
      | _ -> None)
    tc.frames

let row_status cell =
  match Option.bind (Json.member "status" cell) Json.string_opt with
  | Some s -> s
  | None -> "?"

let counter server name =
  match
    Option.bind (Json.member "counters" (Serve.status_json server)) (fun c ->
        Option.bind (Json.member name c) Json.int_opt)
  with
  | Some n -> n
  | None -> Alcotest.fail ("status_json has no counter " ^ name)

let is_done id = function
  | Protocol.Job_done { id = rid; _ } -> rid = id
  | _ -> false

let is_cancelled id = function
  | Protocol.Cancelled { id = rid; _ } -> rid = id
  | _ -> false

let is_error = function Protocol.Error_msg _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Daemon behaviour                                                     *)
(* ------------------------------------------------------------------ *)

let quick_cells = [ spec ~iters:30 (); spec ~iters:40 () ]

let test_submit_streams_rows () =
  with_server ~jobs:2 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "j1" quick_cells);
      wait_for server tc (is_done "j1") "job j1 done";
      let rows = rows_of tc "j1" in
      Alcotest.(check int) "one row per cell" 2 (List.length rows);
      List.iter
        (fun (cached, cell) ->
          Alcotest.(check bool) "freshly simulated" false cached;
          Alcotest.(check string) "status ok" "ok" (row_status cell))
        rows;
      (match List.find_opt (is_done "j1") tc.frames with
      | Some (Protocol.Job_done { rows; failed; _ }) ->
        Alcotest.(check int) "done counts rows" 2 rows;
        Alcotest.(check int) "no failures" 0 failed
      | _ -> assert false);
      Alcotest.(check bool) "scheduler drained" true (Serve.idle server))

let test_identical_jobs_deduplicate () =
  with_server ~jobs:2 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "a" quick_cells);
      wait_for server tc (is_done "a") "job a done";
      Alcotest.(check int) "cold run simulated" 2 (counter server "simulated");
      tsend tc (submit "b" quick_cells);
      wait_for server tc (is_done "b") "job b done";
      let rows = rows_of tc "b" in
      Alcotest.(check int) "full row set again" 2 (List.length rows);
      List.iter
        (fun (cached, _) ->
          Alcotest.(check bool) "served without simulating" true cached)
        rows;
      Alcotest.(check int) "nothing new simulated" 2
        (counter server "simulated");
      Alcotest.(check bool)
        "dedup counter moved" true
        (counter server "deduplicated" >= 2))

let test_two_clients_share_results () =
  with_server ~jobs:1 (fun server path ->
      let a = tconnect server path in
      let b = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose a; tclose b) @@ fun () ->
      (* same cells submitted by both clients back to back: the second
         client's cells either coalesce onto the in-flight computation or
         hit the store — never a second simulation *)
      tsend a (submit "j" quick_cells);
      tsend b (submit "j" quick_cells);
      wait_for server a (is_done "j") "client a done";
      wait_for server b (is_done "j") "client b done";
      Alcotest.(check int) "each client got all rows (a)" 2
        (List.length (rows_of a "j"));
      Alcotest.(check int) "each client got all rows (b)" 2
        (List.length (rows_of b "j"));
      Alcotest.(check int) "one simulation per distinct cell" 2
        (counter server "simulated");
      Alcotest.(check bool)
        "b deduplicated" true
        (counter server "deduplicated" >= 2))

let test_window_bounds_inflight () =
  with_server ~jobs:4 ~window:1 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      let cells = List.map (fun i -> spec ~iters:(20 + i) ()) [ 0; 1; 2; 3 ] in
      tsend tc (submit "w" cells);
      (* the client reads nothing: the server may buffer rows, but must
         never have more than [window] of this client's cells in flight *)
      let max_seen = ref 0 in
      let deadline = Unix.gettimeofday () +. 60.0 in
      let rec pump () =
        Serve.step ~timeout:0.02 server;
        (match Json.member "per_client" (Serve.status_json server) with
        | Some (Json.List [ Json.Obj fields ]) -> (
          match List.assoc_opt "inflight" fields with
          | Some (Json.Int n) -> if n > !max_seen then max_seen := n
          | _ -> ())
        | _ -> ());
        tread tc;
        if not (List.exists (is_done "w") tc.frames) then
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "timed out waiting for windowed job"
          else pump ()
      in
      pump ();
      Alcotest.(check int) "all rows still delivered" 4
        (List.length (rows_of tc "w"));
      Alcotest.(check bool)
        (Printf.sprintf "in-flight bounded by window (saw %d)" !max_seen)
        true (!max_seen <= 1))

let test_cancel_mid_run () =
  with_server ~jobs:1 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      let cells = List.map (fun i -> spec ~iters:(50 + i) ()) [ 0; 1; 2; 3 ] in
      tsend tc (submit "c" cells);
      wait_for server tc
        (function Protocol.Row { id = "c"; _ } -> true | _ -> false)
        "first row";
      tsend tc (Protocol.Cancel { id = "c" });
      wait_for server tc (is_cancelled "c") "cancellation confirmed";
      (match List.find_opt (is_cancelled "c") tc.frames with
      | Some (Protocol.Cancelled { dropped; _ }) ->
        Alcotest.(check bool)
          (Printf.sprintf "dropped some cells (%d)" dropped)
          true (dropped >= 1)
      | _ -> assert false);
      (* the pool drains to idle: queued work vanished, running workers
         completed — nothing was SIGKILLed mid-simulation *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      while (not (Serve.idle server)) && Unix.gettimeofday () < deadline do
        Serve.step ~timeout:0.02 server
      done;
      Alcotest.(check bool) "pool drained after cancel" true (Serve.idle server);
      Alcotest.(check bool)
        "cancellations counted" true
        (counter server "cancelled_cells" >= 1);
      (* resubmitting the same cells works, and previously-finished cells
         come back from the store *)
      tsend tc (submit "c2" cells);
      wait_for server tc (is_done "c2") "resubmission done";
      let rows = rows_of tc "c2" in
      Alcotest.(check int) "complete row set after cancel" 4
        (List.length rows);
      List.iter
        (fun (_, cell) ->
          Alcotest.(check string) "all ok" "ok" (row_status cell))
        rows;
      Alcotest.(check bool)
        "at least the finished cell was cached" true
        (List.exists (fun (cached, _) -> cached) rows))

let test_bad_jobs_rejected_atomically () =
  with_server (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      (* unknown bench: the whole job is rejected, nothing runs *)
      tsend tc
        (submit "bad" [ spec (); spec ~bench:"Nope" () ]);
      wait_for server tc is_error "rejection";
      (match List.find_opt is_error tc.frames with
      | Some (Protocol.Error_msg { id; message }) ->
        Alcotest.(check (option string)) "error names the job" (Some "bad") id;
        check_contains "error names the cell" message "Nope"
      | _ -> assert false);
      Alcotest.(check int) "nothing simulated" 0 (counter server "simulated");
      Alcotest.(check int) "rejection counted" 1
        (counter server "jobs_rejected");
      (* wrong schema over the wire *)
      tc.frames <- [];
      tsend_raw tc "{\"schema\":\"simbench-serve-json-0\",\"op\":\"status\"}";
      wait_for server tc is_error "schema rejection";
      (match tc.frames with
      | [ Protocol.Error_msg { message; _ } ] ->
        check_contains "unsupported schema" message "unsupported schema"
      | _ -> Alcotest.fail "expected one error frame");
      (* malformed JSON gets a position *)
      tc.frames <- [];
      tsend_raw tc "{\"schema\":";
      wait_for server tc is_error "parse rejection";
      match tc.frames with
      | [ Protocol.Error_msg { message; _ } ] ->
        check_contains "line/column" message "column"
      | _ -> Alcotest.fail "expected one error frame")

let test_shutdown_drains () =
  with_server ~jobs:1 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "s" quick_cells);
      wait_for server tc (is_done "s") "job done";
      Serve.begin_shutdown server ~reason:"test";
      Alcotest.(check bool) "shutting down" true (Serve.shutting_down server);
      (* new submissions are refused *)
      tsend tc (submit "late" quick_cells);
      wait_for server tc is_error "late submission refused";
      match List.find_opt is_error tc.frames with
      | Some (Protocol.Error_msg { message; _ }) ->
        check_contains "says why" message "shutting down"
      | _ -> assert false)

let test_persistent_cache_across_servers () =
  let cache = tmp_dir "sb_serve_cache" in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  let first_simulated = ref (-1) in
  with_server ~jobs:1 ~cache_dir:cache (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "p" quick_cells);
      wait_for server tc (is_done "p") "first server done";
      first_simulated := counter server "simulated");
  Alcotest.(check int) "first server simulated both" 2 !first_simulated;
  (* a fresh server over the same cache dir answers from disk *)
  with_server ~jobs:1 ~cache_dir:cache (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "p2" quick_cells);
      wait_for server tc (is_done "p2") "second server done";
      Alcotest.(check int) "second server simulated nothing" 0
        (counter server "simulated");
      List.iter
        (fun (cached, _) ->
          Alcotest.(check bool) "rows marked cached" true cached)
        (rows_of tc "p2"))

(* ------------------------------------------------------------------ *)
(* Protocol 2: sessions, heartbeats, resume                             *)
(* ------------------------------------------------------------------ *)

let test_hello_assigns_sessions () =
  with_server (fun server path ->
      let a = tconnect server path in
      let b = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose a; tclose b) @@ fun () ->
      Alcotest.(check bool) "session a non-empty" true (a.session <> "");
      Alcotest.(check bool) "session b non-empty" true (b.session <> "");
      Alcotest.(check bool) "sessions unique" true (a.session <> b.session))

let test_ping_pong () =
  with_server (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (Protocol.Ping { seq = 7 });
      wait_for server tc
        (function Protocol.Pong { seq } -> seq = 7 | _ -> false)
        "pong 7")

let test_heartbeat_drops_silent_client () =
  with_server ~heartbeat:0.05 ~miss_limit:2 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      Alcotest.(check int) "client connected" 1 (Serve.client_count server);
      (* send nothing: the server must drop us within the contract *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      while Serve.client_count server > 0 && Unix.gettimeofday () < deadline do
        Serve.step ~timeout:0.02 server
      done;
      Alcotest.(check int) "silent client dropped" 0
        (Serve.client_count server);
      Alcotest.(check int) "drop counted" 1 (counter server "clients_dropped");
      Alcotest.(check bool)
        "misses counted" true
        (counter server "heartbeats_missed" >= 2))

let test_activity_is_heartbeat () =
  (* a client busy pinging is never dropped, however long the job *)
  with_server ~heartbeat:0.08 ~miss_limit:2 (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      let stop = Unix.gettimeofday () +. 0.6 in
      let seq = ref 0 in
      while Unix.gettimeofday () < stop do
        incr seq;
        tsend tc (Protocol.Ping { seq = !seq });
        Serve.step ~timeout:0.02 server;
        tread tc
      done;
      Alcotest.(check int) "still connected" 1 (Serve.client_count server);
      Alcotest.(check int) "never dropped" 0 (counter server "clients_dropped"))

let test_resume_dedups_after_disconnect () =
  let cache = tmp_dir "sb_serve_resume" in
  Fun.protect ~finally:(fun () -> rm_rf cache) @@ fun () ->
  with_server ~jobs:1 ~cache_dir:cache (fun server path ->
      let tc = tconnect server path in
      tsend tc (submit "r" quick_cells);
      wait_for server tc (is_done "r") "first pass done";
      Alcotest.(check int) "cold run simulated" 2 (counter server "simulated");
      (* the client vanishes mid-session and comes back, resuming the
         same job id: everything is served from the store, nothing is
         simulated again, and the reconnect is counted *)
      tclose tc;
      Serve.step ~timeout:0.02 server;
      let tc2 = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc2) @@ fun () ->
      tsend tc2 (submit ~resume:true "r" quick_cells);
      wait_for server tc2 (is_done "r") "resumed job done";
      let rows = rows_of tc2 "r" in
      Alcotest.(check int) "full row set on resume" 2 (List.length rows);
      List.iter
        (fun (cached, _) ->
          Alcotest.(check bool) "resume served from store" true cached)
        rows;
      Alcotest.(check int) "nothing re-simulated" 2
        (counter server "simulated");
      Alcotest.(check int) "reconnect counted" 1 (counter server "reconnects"))

let test_row_keys_match_spec_keys () =
  with_server (fun server path ->
      let tc = tconnect server path in
      Fun.protect ~finally:(fun () -> tclose tc) @@ fun () ->
      tsend tc (submit "k" quick_cells);
      wait_for server tc (is_done "k") "job done";
      let expect =
        List.map
          (fun sp ->
            Protocol.spec_key
              {
                sp with
                Protocol.sp_engine =
                  Simbench.Engines.canonical_name sp.Protocol.sp_engine;
              })
          quick_cells
      in
      let got =
        List.filter_map
          (function
            | Protocol.Row { id = "k"; key; _ } -> Some key
            | _ -> None)
          tc.frames
      in
      Alcotest.(check (slist string compare))
        "row keys are the specs' content addresses" expect got)

(* ------------------------------------------------------------------ *)
(* Real daemons: signals, restarts, transport chaos                     *)
(* ------------------------------------------------------------------ *)

let fork_daemon ?(jobs = 1) ?cache_dir ~path () =
  match Unix.fork () with
  | 0 ->
    (try
       let cfg =
         {
           Serve.default_config with
           Serve.unix_path = Some path;
           jobs;
           cache_dir;
           heartbeat = 5.0;
         }
       in
       Serve.run (Serve.create cfg)
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let wait_path ?(timeout = 30.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  if not (Sys.file_exists path) then
    Alcotest.fail ("socket never appeared: " ^ path)

let connect_retry ?(timeout = 30.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Sb_serve.Client.connect ("unix:" ^ path) with
    | Ok c -> c
    | Error e ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail (Sb_serve.Client.error_message e)
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

let test_sigint_drains_gracefully () =
  let dir = tmp_dir "sb_sigint" in
  let path = Filename.concat dir "d.sock" in
  let pid = fork_daemon ~jobs:1 ~path () in
  Fun.protect
    ~finally:(fun () ->
      reap pid;
      rm_rf dir)
  @@ fun () ->
  wait_path path;
  let conn = connect_retry path in
  Fun.protect ~finally:(fun () -> Sb_serve.Client.close conn) @@ fun () ->
  let cells = List.map (fun i -> spec ~iters:(60 + i) ()) [ 0; 1; 2 ] in
  let statuses = ref [] in
  let interrupted = ref false in
  let on_row ~key:_ ~cached:_ cell =
    statuses := row_status cell :: !statuses;
    if not !interrupted then begin
      (* SIGINT the daemon after the first row: queued cells must come
         back as cancelled rows, the running worker finishes, and the
         daemon still exits 0 with its socket unlinked *)
      interrupted := true;
      Unix.kill pid Sys.sigint
    end
  in
  (match Sb_serve.Client.submit ~on_row conn ~id:"sig" ~cells with
  | Ok (Sb_serve.Client.Completed { rows; failed }) ->
    Alcotest.(check int) "every cell answered" 3 (rows + failed);
    Alcotest.(check bool) "cancellations reported as failures" true (failed >= 1)
  | Ok _ -> Alcotest.fail "expected a completed job"
  | Error e -> Alcotest.fail (Sb_serve.Client.error_message e));
  Alcotest.(check bool)
    "queued cells came back cancelled" true
    (List.mem "cancelled" !statuses);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "daemon did not exit 0 after SIGINT");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_resilient_survives_server_restart () =
  let dir = tmp_dir "sb_resil" in
  let path = Filename.concat dir "d.sock" in
  let cache = Filename.concat dir "cache" in
  let pid1 = fork_daemon ~path ~cache_dir:cache () in
  let pid2 = ref None in
  Fun.protect
    ~finally:(fun () ->
      reap pid1;
      Option.iter reap !pid2;
      rm_rf cache;
      rm_rf dir)
  @@ fun () ->
  wait_path path;
  let cells = [ spec ~iters:33 (); spec ~iters:44 (); spec ~iters:55 () ] in
  let seen = Hashtbl.create 8 in
  let restarted = ref false in
  let on_row ~key ~cached:_ ~retried:_ _cell =
    Hashtbl.replace seen key
      (1 + try Hashtbl.find seen key with Not_found -> 0);
    if not !restarted then begin
      (* SIGKILL the daemon after the first row — no graceful anything —
         then start a fresh one on the same socket and store.  The
         resilient client must reconnect and finish; the already-done
         cell must come from the persistent store *)
      restarted := true;
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid1) with Unix.Unix_error _ -> ());
      pid2 := Some (fork_daemon ~path ~cache_dir:cache ())
    end
  in
  let cfg =
    {
      Sb_serve.Resilient.default_config with
      Sb_serve.Resilient.retries = 10;
      backoff = 0.05;
      seed = 11;
    }
  in
  match
    Sb_serve.Resilient.submit ~cfg ~on_row ~addr:("unix:" ^ path) ~id:"resil"
      ~cells ()
  with
  | Error e -> Alcotest.fail (Sb_serve.Client.error_message e)
  | Ok { Sb_serve.Resilient.ended; stats } ->
    (match ended with
    | Sb_serve.Client.Completed { rows; failed } ->
      Alcotest.(check int) "whole job's rows" 3 rows;
      Alcotest.(check int) "none failed" 0 failed
    | _ -> Alcotest.fail "expected a completed job");
    Alcotest.(check bool)
      "reconnected at least once" true
      (stats.Sb_serve.Resilient.st_reconnects >= 1);
    Alcotest.(check int) "no duplicates surfaced" 0
      stats.Sb_serve.Resilient.st_duplicates;
    Alcotest.(check int) "every key exactly once" 3 (Hashtbl.length seen);
    Hashtbl.iter
      (fun _ n -> Alcotest.(check int) "delivered once" 1 n)
      seen

let test_chaos_proxy_recovery () =
  let dir = tmp_dir "sb_chaos" in
  let spath = Filename.concat dir "srv.sock" in
  let ppath = Filename.concat dir "proxy.sock" in
  let cache = Filename.concat dir "cache" in
  let dpid = fork_daemon ~path:spath ~cache_dir:cache () in
  let ppid = ref None in
  Fun.protect
    ~finally:(fun () ->
      reap dpid;
      Option.iter reap !ppid;
      rm_rf cache;
      rm_rf dir)
  @@ fun () ->
  wait_path spath;
  ppid :=
    Some
      (match Unix.fork () with
      | 0 ->
        (try
           let cfg =
             {
               Sb_serve.Chaosproxy.default_config with
               Sb_serve.Chaosproxy.listen = "unix:" ^ ppath;
               upstream = "unix:" ^ spath;
               seed = 3;
               reset_after = (900, 1800);
               chunk = 64;
             }
           in
           Sb_serve.Chaosproxy.run (Sb_serve.Chaosproxy.create cfg)
         with _ -> ());
        Unix._exit 0
      | pid -> pid);
  wait_path ppath;
  let cells = List.map (fun i -> spec ~iters:(30 + i) ()) [ 0; 1; 2; 3 ] in
  let seen = Hashtbl.create 8 in
  let on_row ~key ~cached:_ ~retried:_ _cell =
    Hashtbl.replace seen key
      (1 + try Hashtbl.find seen key with Not_found -> 0)
  in
  let cfg =
    {
      Sb_serve.Resilient.default_config with
      Sb_serve.Resilient.retries = 15;
      backoff = 0.02;
      seed = 5;
    }
  in
  match
    Sb_serve.Resilient.submit ~cfg ~on_row ~addr:("unix:" ^ ppath) ~id:"chaos"
      ~cells ()
  with
  | Error e -> Alcotest.fail (Sb_serve.Client.error_message e)
  | Ok { Sb_serve.Resilient.ended; stats } ->
    (match ended with
    | Sb_serve.Client.Completed { rows; failed } ->
      Alcotest.(check int) "complete row set through chaos" 4 rows;
      Alcotest.(check int) "none failed" 0 failed
    | _ -> Alcotest.fail "expected a completed job");
    Alcotest.(check int) "no duplicates surfaced" 0
      stats.Sb_serve.Resilient.st_duplicates;
    Alcotest.(check int) "every key exactly once" 4 (Hashtbl.length seen);
    Hashtbl.iter
      (fun _ n -> Alcotest.(check int) "delivered once" 1 n)
      seen;
    (* with resets every <= 1800 bytes per direction, a multi-row job
       cannot have sailed through untouched *)
    Alcotest.(check bool)
      "the proxy actually hurt us" true
      (stats.Sb_serve.Resilient.st_reconnects >= 1)

let () =
  Random.self_init ();
  Alcotest.run "sb_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "spec round trip" `Quick test_spec_round_trip;
          Alcotest.test_case "spec key canonical" `Quick test_spec_key_canonical;
          Alcotest.test_case "row round trip" `Quick test_row_round_trip;
          Alcotest.test_case "request round trip" `Quick test_request_round_trip;
          Alcotest.test_case "response round trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "malformed frame position" `Quick
            test_malformed_frame_has_position;
          Alcotest.test_case "schema version rejected" `Quick
            test_schema_version_rejected;
          Alcotest.test_case "v1 migration error" `Quick
            test_v1_schema_migration_error;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit streams rows" `Quick
            test_submit_streams_rows;
          Alcotest.test_case "identical jobs deduplicate" `Quick
            test_identical_jobs_deduplicate;
          Alcotest.test_case "two clients share results" `Quick
            test_two_clients_share_results;
          Alcotest.test_case "window bounds in-flight" `Quick
            test_window_bounds_inflight;
          Alcotest.test_case "cancel mid-run" `Quick test_cancel_mid_run;
          Alcotest.test_case "bad jobs rejected" `Quick
            test_bad_jobs_rejected_atomically;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
          Alcotest.test_case "persistent cache across servers" `Quick
            test_persistent_cache_across_servers;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "hello assigns sessions" `Quick
            test_hello_assigns_sessions;
          Alcotest.test_case "ping pong" `Quick test_ping_pong;
          Alcotest.test_case "heartbeat drops silent client" `Quick
            test_heartbeat_drops_silent_client;
          Alcotest.test_case "activity is heartbeat" `Quick
            test_activity_is_heartbeat;
          Alcotest.test_case "resume dedups after disconnect" `Quick
            test_resume_dedups_after_disconnect;
          Alcotest.test_case "row keys match spec keys" `Quick
            test_row_keys_match_spec_keys;
          Alcotest.test_case "sigint drains gracefully" `Quick
            test_sigint_drains_gracefully;
          Alcotest.test_case "resilient survives server restart" `Quick
            test_resilient_survives_server_restart;
          Alcotest.test_case "chaos proxy recovery" `Quick
            test_chaos_proxy_recovery;
        ] );
    ]
