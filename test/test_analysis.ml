(* Tests for the static analysis library: one positive and one negative
   case per lint rule, the suite-wide cleanliness gate, and the DBT IR
   pass validator (accepts the real passes, flags a broken one). *)

module P = Simbench.Pasm
module Bench = Simbench.Bench
module Category = Simbench.Category
module Lint = Sb_analysis.Lint
module Ir_check = Sb_analysis.Ir_check
module Ir = Sb_dbt.Ir
module Uop = Sb_isa.Uop
open Simbench.Pasm

let rules fs = List.map (fun f -> f.Lint.rule) fs
let has rule fs = List.mem rule (rules fs)

let check_fires rule program =
  let fs = Lint.lint_program program in
  if not (has rule fs) then
    Alcotest.failf "expected %s, got: %s" rule
      (String.concat "; " (List.map Lint.render fs))

let check_clean program =
  match Lint.lint_program program with
  | [] -> ()
  | fs ->
    Alcotest.failf "expected no findings, got: %s"
      (String.concat "; " (List.map Lint.render fs))

(* ---------------- whole-program rules ---------------- *)

let test_clean_program () =
  check_clean
    [
      Li (v0, 3);
      L "loop";
      Alu (Sb_isa.Uop.Sub, v0, v0, I 1);
      Cmp (v0, I 0);
      Br (Sb_isa.Uop.Ne, "loop");
      Halt;
    ]

let test_undefined_label () = check_fires "undefined-label" [ Jmp "nowhere" ]

let test_duplicate_label () =
  check_fires "duplicate-label" [ L "a"; Halt; L "a"; Halt ]

let test_unreachable_code () =
  check_fires "unreachable-code" [ Halt; Li (v0, 1); Halt ]

let test_fall_off_end () = check_fires "fall-off-end" [ Li (v0, 1) ]

let test_fall_into_data () =
  check_fires "fall-into-data" [ Li (v0, 1); L "d"; Raw_word 7 ]

let test_use_before_def () =
  check_fires "use-before-def" [ Alu (Sb_isa.Uop.Add, v0, v1, I 1); Halt ]

let test_roots_assume_defined () =
  (* the same op is fine when its block is a caller-supplied root: hardware
     entry points get all registers from the faulting context *)
  match
    Lint.lint_program ~roots:[ "vec" ]
      [ Halt; L "vec"; Alu (Sb_isa.Uop.Add, v0, v1, I 1); Halt ]
  with
  | fs when has "use-before-def" fs -> Alcotest.fail "root not assumed defined"
  | _ -> ()

let test_lr_clobber () =
  check_fires "lr-clobber"
    [ Call "f"; Halt; L "f"; Call "g"; Ret; L "g"; Ret ]

let test_lr_saved_ok () =
  (* the classic prologue/epilogue makes the nested call safe *)
  check_clean
    [
      Li (sp, 0x8000);
      Call "f";
      Halt;
      L "f";
      Alu (Sb_isa.Uop.Sub, sp, sp, I 4);
      Store (W32, lr, sp, 0);
      Call "g";
      Load (W32, lr, sp, 0);
      Alu (Sb_isa.Uop.Add, sp, sp, I 4);
      Ret;
      L "g";
      Ret;
    ]

let test_unused_label () =
  check_fires "unused-label" [ Jmp "a"; L "a"; L "b"; Halt ]

(* ---------------- phase-scoped convention rules ---------------- *)

let support = Simbench.Engines.support Sb_isa.Arch_sig.Sba

let mk_bench ?(category = Category.Memory_system) ?(functions = []) kernel =
  {
    Bench.name = "crafted";
    category;
    description = "crafted negative-test bench";
    default_iters = 1;
    ops_per_iter = 1;
    platform_specific = false;
    body =
      (fun ~support:_ ~platform:_ ->
        { Bench.empty_body with kernel; functions });
  }

let bench_fires ?category rule kernel =
  let fs = Lint.lint_bench ~support (mk_bench ?category kernel) in
  if not (has rule fs) then
    Alcotest.failf "expected %s, got: %s" rule
      (String.concat "; " (List.map Lint.render fs))

let test_v4_clobber () = bench_fires "v4-clobber" [ Li (v4, 0) ]

let test_v3_across_fault () =
  bench_fires "v3-across-fault"
    [ Li (v3, 1); Li (v1, 0x9000); Load (W32, v0, v1, 0); Mov (v0, v3) ]

let test_v3_severity_by_category () =
  let kernel =
    [ Li (v3, 1); Li (v1, 0x9000); Load (W32, v0, v1, 0); Mov (v0, v3) ]
  in
  let sev category =
    let fs = Lint.lint_bench ~support (mk_bench ~category kernel) in
    match List.filter (fun f -> f.Lint.rule = "v3-across-fault") fs with
    | f :: _ -> f.Lint.severity
    | [] -> Alcotest.fail "v3-across-fault did not fire"
  in
  Alcotest.(check bool)
    "error for suite categories" true
    (sev Category.Memory_system = Lint.Error);
  Alcotest.(check bool)
    "advisory for applications" true
    (sev Category.Application = Lint.Warning)

let test_sp_imbalance () =
  bench_fires "sp-imbalance" [ Alu (Sb_isa.Uop.Sub, sp, sp, I 8) ]

let test_sp_balanced_ok () =
  let fs =
    Lint.lint_bench ~support
      (mk_bench
         [
           Li (v1, 7);
           Alu (Sb_isa.Uop.Sub, sp, sp, I 4);
           Store (W32, v1, sp, 0);
           Load (W32, v1, sp, 0);
           Alu (Sb_isa.Uop.Add, sp, sp, I 4);
         ])
  in
  if has "sp-imbalance" fs then Alcotest.fail "balanced push/pop flagged"

(* ---------------- suite gate ---------------- *)

let test_suite_is_clean () =
  List.iter
    (fun (bench, arch, findings) ->
      match findings with
      | [] -> ()
      | fs ->
        Alcotest.failf "%s [%s]: %s" bench arch
          (String.concat "; " (List.map Lint.render fs)))
    (Lint.lint_suite ())

let test_workloads_have_no_errors () =
  let benches =
    List.map
      (fun w -> w.Sb_workloads.Workloads.bench)
      Sb_workloads.Workloads.all
  in
  List.iter
    (fun (bench, arch, findings) ->
      match Lint.errors findings with
      | [] -> ()
      | fs ->
        Alcotest.failf "%s [%s]: %s" bench arch
          (String.concat "; " (List.map Lint.render fs)))
    (Lint.lint_suite ~benches ())

(* ---------------- IR pass validator ---------------- *)

let mk_insn ?(va = 0x1000) ?(len = 4) uops = { Ir.va; len; uops }

let alu ?(flags = false) op rd rn rm =
  Uop.Alu { op; rd = Some rd; rn; rm; set_flags = flags }

(* A block exercising the shapes the real passes rewrite: a movw-style
   constant, a foldable add, a flag-setting compare, memory traffic and a
   conditional branch. *)
let sample_block () =
  [|
    mk_insn ~va:0x1000 [ alu Uop.Orr 1 (Uop.Imm 0) (Uop.Imm 0xBEEF) ];
    mk_insn ~va:0x1004 [ alu Uop.Add 2 (Uop.Reg 1) (Uop.Imm 0) ];
    mk_insn ~va:0x1008 [ alu ~flags:true Uop.Sub 3 (Uop.Reg 2) (Uop.Reg 2) ];
    mk_insn ~va:0x100C
      [
        Uop.Load
          { width = Uop.W32; rd = 4; base = Uop.Reg 5; offset = 8; user = false };
      ];
    mk_insn ~va:0x1010
      [
        Uop.Store
          { width = Uop.W32; rs = 4; base = Uop.Reg 5; offset = 12; user = false };
      ];
    mk_insn ~va:0x1014
      [ Uop.Branch { cond = Uop.Eq; target = Uop.Direct 0x2000; link = None } ];
  |]

let real_passes =
  [
    ("const_prop", Ir.const_prop);
    ("nop_elim", Ir.nop_elim);
    ("peephole", Ir.peephole);
  ]

let test_validator_accepts_real_passes () =
  List.iter
    (fun (name, pass) ->
      let before = sample_block () in
      let after = Ir.copy before in
      pass after;
      match Ir_check.check ~pass:name ~before ~after () with
      | None -> ()
      | Some v -> Alcotest.failf "%s rejected: %s" name (Ir_check.message v))
    real_passes

(* A stitched two-block superblock shaped exactly as hot-trace formation
   builds it (see lib/dbt/dbt.ml): block A's terminator — an unconditional
   direct branch to B — sits mid-array, followed by block B's instructions.
   The real passes must be free to optimise across the seam (B consumes
   constants established in A) without the validator objecting. *)
let stitched_superblock () =
  [|
    mk_insn ~va:0x1000 [ alu Uop.Orr 1 (Uop.Imm 0) (Uop.Imm 0x40) ];
    mk_insn ~va:0x1004 [ alu Uop.Add 2 (Uop.Reg 1) (Uop.Imm 4) ];
    mk_insn ~va:0x1008
      [ Uop.Branch { cond = Uop.Always; target = Uop.Direct 0x2000; link = None } ];
    mk_insn ~va:0x2000 [ alu Uop.Add 3 (Uop.Reg 2) (Uop.Imm 0) ];
    mk_insn ~va:0x2004 [ alu ~flags:true Uop.Sub 4 (Uop.Reg 3) (Uop.Reg 1) ];
    mk_insn ~va:0x2008
      [ Uop.Branch { cond = Uop.Ne; target = Uop.Direct 0x1000; link = None } ];
  |]

let test_validator_accepts_stitched_traces () =
  List.iter
    (fun (name, pass) ->
      let before = stitched_superblock () in
      let after = Ir.copy before in
      pass after;
      match Ir_check.check ~pass:name ~before ~after () with
      | None -> ()
      | Some v ->
        Alcotest.failf "%s rejected stitched IR: %s" name (Ir_check.message v))
    real_passes;
  (* and under the full pass pipeline, validated per pass, exactly as
     form_trace runs it *)
  let ir = stitched_superblock () in
  ignore
    (Ir.run
       ~validate:(fun ~pass ~before ~after ->
         match Ir_check.check ~pass ~before ~after () with
         | None -> ()
         | Some v ->
           Alcotest.failf "pipeline pass %s rejected stitched IR: %s" pass
             (Ir_check.message v))
       ~passes:4 ir
      : int)

(* A deliberately broken "optimisation": drops the flag side-effect of
   every ALU uop.  The validator must pinpoint the flag divergence. *)
let drop_flags (ir : Ir.t) =
  Array.iteri
    (fun i insn ->
      ir.(i) <-
        {
          insn with
          Ir.uops =
            List.map
              (function
                | Uop.Alu { op; rd; rn; rm; set_flags = _ } ->
                  Uop.Alu { op; rd; rn; rm; set_flags = false }
                | u -> u)
              insn.Ir.uops;
        })
    ir

let test_validator_catches_broken_pass () =
  let before = sample_block () in
  let after = Ir.copy before in
  drop_flags after;
  match Ir_check.check ~pass:"drop_flags" ~before ~after () with
  | None -> Alcotest.fail "flag-dropping pass not flagged"
  | Some v ->
    Alcotest.(check string) "pass name" "drop_flags" v.Ir_check.pass;
    Alcotest.(check int) "first bad slot" 0x1008 v.Ir_check.va;
    Alcotest.(check bool)
      "detail names a flag" true
      (String.length v.Ir_check.detail > 0)

let test_validated_sweep_is_clean () =
  let arch = Sb_isa.Arch_sig.Sba in
  let divergences =
    Sb_verify.Verify.random_sweep ~arch
      ~engines:[ Simbench.Engines.interp arch; Simbench.Engines.dbt arch ]
      ~seeds:4
      ~validate_passes:(fun ~version ~pass ~before ~after ->
        Option.map Ir_check.message (Ir_check.check ?version ~pass ~before ~after ()))
      ()
  in
  match divergences with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "divergence (%s vs %s): %s" d.Sb_verify.Verify.reference_engine
      d.Sb_verify.Verify.diverging_engine d.Sb_verify.Verify.detail

(* Same validated sweep against a trace-aggressive DBT: the random
   programs' bounded loops go hot at threshold 2, so the installed checker
   sees the stitched cross-block IR of every formed trace. *)
let test_validated_sweep_covers_traces () =
  let arch = Sb_isa.Arch_sig.Sba in
  let trace_dbt =
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.trace_threshold = 2 }
  in
  let divergences =
    Sb_verify.Verify.random_sweep ~arch
      ~engines:[ Simbench.Engines.interp arch; trace_dbt ]
      ~seeds:4
      ~validate_passes:(fun ~version ~pass ~before ~after ->
        Option.map Ir_check.message (Ir_check.check ?version ~pass ~before ~after ()))
      ()
  in
  match divergences with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "divergence (%s vs %s): %s" d.Sb_verify.Verify.reference_engine
      d.Sb_verify.Verify.diverging_engine d.Sb_verify.Verify.detail

let () =
  Alcotest.run "analysis"
    [
      ( "lint-program",
        [
          Alcotest.test_case "clean program" `Quick test_clean_program;
          Alcotest.test_case "undefined label" `Quick test_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "unreachable code" `Quick test_unreachable_code;
          Alcotest.test_case "fall off end" `Quick test_fall_off_end;
          Alcotest.test_case "fall into data" `Quick test_fall_into_data;
          Alcotest.test_case "use before def" `Quick test_use_before_def;
          Alcotest.test_case "roots assumed defined" `Quick
            test_roots_assume_defined;
          Alcotest.test_case "lr clobber" `Quick test_lr_clobber;
          Alcotest.test_case "lr saved ok" `Quick test_lr_saved_ok;
          Alcotest.test_case "unused label" `Quick test_unused_label;
        ] );
      ( "lint-bench",
        [
          Alcotest.test_case "v4 clobber" `Quick test_v4_clobber;
          Alcotest.test_case "v3 across fault" `Quick test_v3_across_fault;
          Alcotest.test_case "v3 severity by category" `Quick
            test_v3_severity_by_category;
          Alcotest.test_case "sp imbalance" `Quick test_sp_imbalance;
          Alcotest.test_case "sp balanced" `Quick test_sp_balanced_ok;
        ] );
      ( "suite-gate",
        [
          Alcotest.test_case "suite is lint-clean" `Quick test_suite_is_clean;
          Alcotest.test_case "workloads have no errors" `Quick
            test_workloads_have_no_errors;
        ] );
      ( "ir-check",
        [
          Alcotest.test_case "accepts real passes" `Quick
            test_validator_accepts_real_passes;
          Alcotest.test_case "accepts stitched traces" `Quick
            test_validator_accepts_stitched_traces;
          Alcotest.test_case "catches broken pass" `Quick
            test_validator_catches_broken_pass;
          Alcotest.test_case "validated sweep clean" `Quick
            test_validated_sweep_is_clean;
          Alcotest.test_case "validated sweep covers traces" `Quick
            test_validated_sweep_covers_traces;
        ] );
    ]
