(* Tests for page tables, the walker and the software TLB. *)

module Access = Sb_mmu.Access
module Pte = Sb_mmu.Pte
module Walker = Sb_mmu.Walker
module Tlb = Sb_mmu.Tlb
module Mtlb = Sb_mmu.Mtlb

(* A tiny physical memory to hold page tables. *)
let make_phys () = Sb_mem.Phys_mem.create ~size:(1 lsl 20)

let read32_of phys pa = Sb_mem.Phys_mem.read32 phys pa

let ttbr = 0x4000
let l2_base = 0x8000

let install_l1_section phys ~va ~pa ~ap ~xn =
  Sb_mem.Phys_mem.write32 phys
    (ttbr + (Pte.l1_index va * 4))
    (Pte.encode_section ~pa_base:pa ~ap ~xn)

let install_page phys ~va ~pa ~ap ~xn =
  Sb_mem.Phys_mem.write32 phys
    (ttbr + (Pte.l1_index va * 4))
    (Pte.encode_table ~l2_base);
  Sb_mem.Phys_mem.write32 phys
    (l2_base + (Pte.l2_index va * 4))
    (Pte.encode_page ~pa_base:pa ~ap ~xn)

let test_pte_roundtrip () =
  let e = Pte.encode_section ~pa_base:0x0040_0000 ~ap:Access.Ap.user_full ~xn:true in
  (match Pte.decode_l1 e with
  | Pte.L1_section { pa_base; ap; xn } ->
    Alcotest.(check int) "base" 0x0040_0000 pa_base;
    Alcotest.(check int) "ap" Access.Ap.user_full ap;
    Alcotest.(check bool) "xn" true xn
  | _ -> Alcotest.fail "expected section");
  let e = Pte.encode_page ~pa_base:0x1_2000 ~ap:Access.Ap.kernel_only ~xn:false in
  (match Pte.decode_l2 e with
  | Pte.L2_page { pa_base; ap; xn } ->
    Alcotest.(check int) "page base" 0x1_2000 pa_base;
    Alcotest.(check int) "page ap" Access.Ap.kernel_only ap;
    Alcotest.(check bool) "page xn" false xn
  | _ -> Alcotest.fail "expected page");
  Alcotest.(check bool) "invalid decodes invalid" true
    (Pte.decode_l1 Pte.invalid = Pte.L1_invalid)

let test_pte_alignment_checks () =
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "section misaligned" true
    (raised (fun () -> ignore (Pte.encode_section ~pa_base:0x1000 ~ap:0 ~xn:false)));
  Alcotest.(check bool) "page misaligned" true
    (raised (fun () -> ignore (Pte.encode_page ~pa_base:0x123 ~ap:0 ~xn:false)))

let test_walk_section () =
  let phys = make_phys () in
  install_l1_section phys ~va:0x0 ~pa:0x0 ~ap:Access.Ap.kernel_only ~xn:false;
  match Walker.walk ~read32:(read32_of phys) ~ttbr ~va:0x1234 with
  | Ok m ->
    Alcotest.(check int) "va page" 0x1000 m.Walker.va_page;
    Alcotest.(check int) "pa page" 0x1000 m.Walker.pa_page;
    Alcotest.(check bool) "from section" true m.Walker.from_section;
    Alcotest.(check int) "one level" 1 m.Walker.levels
  | Error _ -> Alcotest.fail "walk failed"

let test_walk_page () =
  let phys = make_phys () in
  install_page phys ~va:0x0040_3000 ~pa:0x0008_0000 ~ap:Access.Ap.user_full ~xn:true;
  match Walker.walk ~read32:(read32_of phys) ~ttbr ~va:0x0040_3ABC with
  | Ok m ->
    Alcotest.(check int) "pa page" 0x0008_0000 m.Walker.pa_page;
    Alcotest.(check int) "two levels" 2 m.Walker.levels;
    Alcotest.(check bool) "xn" true m.Walker.xn
  | Error _ -> Alcotest.fail "walk failed"

let test_walk_unmapped () =
  let phys = make_phys () in
  (match Walker.walk ~read32:(read32_of phys) ~ttbr ~va:0x5000_0000 with
  | Error Access.Translation -> ()
  | _ -> Alcotest.fail "expected translation fault");
  (* table entry present but L2 invalid *)
  Sb_mem.Phys_mem.write32 phys
    (ttbr + (Pte.l1_index 0x0040_0000 * 4))
    (Pte.encode_table ~l2_base);
  match Walker.walk ~read32:(read32_of phys) ~ttbr ~va:0x0040_0000 with
  | Error Access.Translation -> ()
  | _ -> Alcotest.fail "expected L2 translation fault"

let test_translate_permissions () =
  let phys = make_phys () in
  install_page phys ~va:0x1000 ~pa:0x2000 ~ap:Access.Ap.user_read ~xn:true;
  let tr kind priv =
    Walker.translate ~read32:(read32_of phys) ~ttbr ~va:0x1004 ~kind ~priv
  in
  Alcotest.(check bool) "kernel read ok" true (tr Access.Read Access.Kernel = Ok 0x2004);
  Alcotest.(check bool) "user read ok" true (tr Access.Read Access.User = Ok 0x2004);
  Alcotest.(check bool) "user write denied" true
    (tr Access.Write Access.User = Error Access.Permission);
  Alcotest.(check bool) "kernel write ok" true (tr Access.Write Access.Kernel = Ok 0x2004);
  Alcotest.(check bool) "execute denied by xn" true
    (tr Access.Execute Access.Kernel = Error Access.Permission)

let test_ap_matrix () =
  let open Access in
  (* (ap, kind, priv, expected) *)
  let cases =
    [
      (Ap.kernel_only, Read, Kernel, true);
      (Ap.kernel_only, Read, User, false);
      (Ap.kernel_only, Write, Kernel, true);
      (Ap.kernel_only, Write, User, false);
      (Ap.user_read, Read, User, true);
      (Ap.user_read, Write, User, false);
      (Ap.user_full, Write, User, true);
      (Ap.kernel_read, Write, Kernel, false);
      (Ap.kernel_read, Read, Kernel, true);
      (Ap.kernel_read, Read, User, false);
    ]
  in
  List.iteri
    (fun i (ap, kind, priv, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d" i)
        expected
        (Ap.permits ~ap ~xn:false kind priv))
    cases

let test_tlb_basics () =
  let tlb = Tlb.create ~entries:16 in
  Alcotest.(check bool) "miss on empty" true (Tlb.probe tlb ~vpn:5 ~asid:0 = None);
  Tlb.insert tlb { Tlb.vpn = 5; ppn = 9; ap = 0; xn = false; asid = 0 };
  (match Tlb.probe tlb ~vpn:5 ~asid:0 with
  | Some e -> Alcotest.(check int) "ppn" 9 e.Tlb.ppn
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Tlb.hits tlb);
  Alcotest.(check int) "misses" 1 (Tlb.misses tlb)

let test_tlb_conflict_eviction () =
  let tlb = Tlb.create ~entries:16 in
  Tlb.insert tlb { Tlb.vpn = 3; ppn = 1; ap = 0; xn = false; asid = 0 };
  (* vpn 19 maps to the same direct-mapped slot (19 mod 16 = 3) *)
  Tlb.insert tlb { Tlb.vpn = 19; ppn = 2; ap = 0; xn = false; asid = 0 };
  Alcotest.(check bool) "old evicted" true (Tlb.lookup tlb ~vpn:3 ~asid:0 = None);
  Alcotest.(check bool) "new present" true (Tlb.lookup tlb ~vpn:19 ~asid:0 <> None)

let test_tlb_invalidate_and_flush () =
  let tlb = Tlb.create ~entries:16 in
  Tlb.insert tlb { Tlb.vpn = 1; ppn = 1; ap = 0; xn = false; asid = 0 };
  Tlb.insert tlb { Tlb.vpn = 2; ppn = 2; ap = 0; xn = false; asid = 0 };
  Tlb.invalidate_page tlb ~vpn:1 ~asid:0;
  Alcotest.(check bool) "invalidated" true (Tlb.lookup tlb ~vpn:1 ~asid:0 = None);
  Alcotest.(check bool) "other kept" true (Tlb.lookup tlb ~vpn:2 ~asid:0 <> None);
  (* invalidating a vpn that aliases but does not match must not clobber *)
  Tlb.invalidate_page tlb ~vpn:18 ~asid:0;
  Alcotest.(check bool) "alias kept" true (Tlb.lookup tlb ~vpn:2 ~asid:0 <> None);
  Tlb.flush tlb;
  Alcotest.(check bool) "flushed" true (Tlb.lookup tlb ~vpn:2 ~asid:0 = None);
  Alcotest.(check int) "flush count" 1 (Tlb.flushes tlb)

let test_tlb_asid_tagging () =
  let tlb = Tlb.create ~entries:16 in
  Tlb.insert tlb { Tlb.vpn = 4; ppn = 10; ap = 0; xn = false; asid = 1 };
  Tlb.insert tlb { Tlb.vpn = 4; ppn = 20; ap = 0; xn = false; asid = 2 };
  (match Tlb.lookup tlb ~vpn:4 ~asid:1 with
  | Some e -> Alcotest.(check int) "asid 1 ppn" 10 e.Tlb.ppn
  | None -> Alcotest.fail "asid 1 lost");
  (match Tlb.lookup tlb ~vpn:4 ~asid:2 with
  | Some e -> Alcotest.(check int) "asid 2 ppn" 20 e.Tlb.ppn
  | None -> Alcotest.fail "asid 2 lost");
  Alcotest.(check bool) "asid 3 misses" true (Tlb.lookup tlb ~vpn:4 ~asid:3 = None);
  Tlb.invalidate_page tlb ~vpn:4 ~asid:1;
  Alcotest.(check bool) "qualified invalidate" true
    (Tlb.lookup tlb ~vpn:4 ~asid:1 = None && Tlb.lookup tlb ~vpn:4 ~asid:2 <> None)

let test_tlb_geometry_validation () =
  let raised n = try ignore (Tlb.create ~entries:n); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero" true (raised 0);
  Alcotest.(check bool) "non power of two" true (raised 24);
  Alcotest.(check bool) "ok" false (raised 64)

(* --- host-side micro-TLB (the DBT flat-memory fast path) --- *)

let test_mtlb_fill_probe () =
  let m = Mtlb.create ~entries:16 in
  Alcotest.(check int) "entries" 16 (Mtlb.entries m);
  Alcotest.(check int) "miss on empty" (-1) (Mtlb.probe m ~vpn:5 ~asid:1 ~priv:1);
  Mtlb.fill m ~vpn:5 ~asid:1 ~priv:1 ~base:0x5000;
  Alcotest.(check int) "hit" 0x5000 (Mtlb.probe m ~vpn:5 ~asid:1 ~priv:1);
  (* every component of the key must match *)
  Alcotest.(check int) "wrong asid" (-1) (Mtlb.probe m ~vpn:5 ~asid:2 ~priv:1);
  Alcotest.(check int) "wrong priv" (-1) (Mtlb.probe m ~vpn:5 ~asid:1 ~priv:0);
  Alcotest.(check int) "wrong vpn" (-1) (Mtlb.probe m ~vpn:6 ~asid:1 ~priv:1)

let test_mtlb_conflict_eviction () =
  let m = Mtlb.create ~entries:16 in
  Mtlb.fill m ~vpn:3 ~asid:0 ~priv:0 ~base:0x1000;
  (* vpn 19 lands in the same direct-mapped slot (19 mod 16 = 3) *)
  Mtlb.fill m ~vpn:19 ~asid:0 ~priv:0 ~base:0x2000;
  Alcotest.(check int) "old evicted" (-1) (Mtlb.probe m ~vpn:3 ~asid:0 ~priv:0);
  Alcotest.(check int) "new present" 0x2000 (Mtlb.probe m ~vpn:19 ~asid:0 ~priv:0)

let test_mtlb_invalidate_page () =
  let m = Mtlb.create ~entries:16 in
  Mtlb.fill m ~vpn:1 ~asid:7 ~priv:1 ~base:0x1000;
  Mtlb.fill m ~vpn:2 ~asid:7 ~priv:0 ~base:0x2000;
  (* asid/priv-blind: drops the entry no matter how it was tagged *)
  Mtlb.invalidate_page m ~vpn:1;
  Alcotest.(check int) "invalidated" (-1) (Mtlb.probe m ~vpn:1 ~asid:7 ~priv:1);
  Alcotest.(check int) "other kept" 0x2000 (Mtlb.probe m ~vpn:2 ~asid:7 ~priv:0);
  (* an aliasing vpn that does not match must not clobber the slot *)
  Mtlb.invalidate_page m ~vpn:18;
  Alcotest.(check int) "alias kept" 0x2000 (Mtlb.probe m ~vpn:2 ~asid:7 ~priv:0)

let test_mtlb_flush_generation () =
  let m = Mtlb.create ~entries:16 in
  for vpn = 0 to 15 do
    Mtlb.fill m ~vpn ~asid:0 ~priv:1 ~base:(vpn * 0x1000)
  done;
  let g0 = Mtlb.generation m in
  Mtlb.flush m;
  Alcotest.(check bool) "generation bumped" true (Mtlb.generation m > g0);
  for vpn = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "vpn %d flushed" vpn)
      (-1)
      (Mtlb.probe m ~vpn ~asid:0 ~priv:1)
  done;
  (* refills after a flush are visible again *)
  Mtlb.fill m ~vpn:4 ~asid:0 ~priv:1 ~base:0x4000;
  Alcotest.(check int) "refill after flush" 0x4000 (Mtlb.probe m ~vpn:4 ~asid:0 ~priv:1)

let test_mtlb_geometry_validation () =
  let raised n = try ignore (Mtlb.create ~entries:n); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero" true (raised 0);
  Alcotest.(check bool) "non power of two" true (raised 24);
  Alcotest.(check bool) "ok" false (raised 256)

(* Property: for random page tables, a TLB filled from walks always agrees
   with a fresh walk. *)
let prop_tlb_coherent_with_walk =
  QCheck.Test.make ~name:"tlb agrees with walker" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 255) (int_bound 200)))
    (fun mappings ->
      let phys = make_phys () in
      let tlb = Tlb.create ~entries:64 in
      (* install each mapping va_page -> pa_page in a 1 MiB arena *)
      List.iter
        (fun (vp, pp) ->
          install_page phys ~va:(vp lsl 12) ~pa:(pp lsl 12)
            ~ap:Access.Ap.kernel_only ~xn:false)
        mappings;
      List.for_all
        (fun (vp, _) ->
          let va = (vp lsl 12) lor 0x10 in
          match Walker.walk ~read32:(read32_of phys) ~ttbr ~va with
          | Error _ -> true
          | Ok m ->
            Tlb.insert tlb
              { Tlb.vpn = vp; ppn = m.Walker.pa_page lsr 12; ap = m.Walker.ap;
                xn = m.Walker.xn; asid = 0 };
            (match Tlb.lookup tlb ~vpn:vp ~asid:0 with
            | Some e -> e.Tlb.ppn lsl 12 = m.Walker.pa_page
            | None -> false))
        mappings)

let () =
  Alcotest.run "sb_mmu"
    [
      ( "pte",
        [
          Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip;
          Alcotest.test_case "alignment" `Quick test_pte_alignment_checks;
        ] );
      ( "walker",
        [
          Alcotest.test_case "section" `Quick test_walk_section;
          Alcotest.test_case "page" `Quick test_walk_page;
          Alcotest.test_case "unmapped" `Quick test_walk_unmapped;
          Alcotest.test_case "permissions" `Quick test_translate_permissions;
          Alcotest.test_case "ap matrix" `Quick test_ap_matrix;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "basics" `Quick test_tlb_basics;
          Alcotest.test_case "conflict eviction" `Quick test_tlb_conflict_eviction;
          Alcotest.test_case "invalidate/flush" `Quick test_tlb_invalidate_and_flush;
          Alcotest.test_case "geometry" `Quick test_tlb_geometry_validation;
          Alcotest.test_case "asid tagging" `Quick test_tlb_asid_tagging;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_tlb_coherent_with_walk ] );
      ( "mtlb",
        [
          Alcotest.test_case "fill/probe" `Quick test_mtlb_fill_probe;
          Alcotest.test_case "conflict eviction" `Quick test_mtlb_conflict_eviction;
          Alcotest.test_case "invalidate page" `Quick test_mtlb_invalidate_page;
          Alcotest.test_case "flush/generation" `Quick test_mtlb_flush_generation;
          Alcotest.test_case "geometry" `Quick test_mtlb_geometry_validation;
        ] );
    ]
