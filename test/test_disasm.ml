(* Disassembler round-trip over the full encoding enumeration: for every
   case of every opcode class on both ISAs, decode -> disassemble -> decode
   again from the disassembler's captured bytes must reproduce the same
   micro-ops, and the rendered line must match the decoder's output.  This
   pins the disassembler (and the enumerations) to the decoders. *)

module Encoding = Sb_isa.Encoding
module Disasm = Sb_isa.Disasm
module Uop = Sb_isa.Uop

let base = 0x10000

let sets =
  [
    ( (module Sb_arch_sba.Arch : Sb_isa.Arch_sig.ARCH),
      Sb_arch_sba.Encodings.set );
    ( (module Sb_arch_vlx.Arch : Sb_isa.Arch_sig.ARCH),
      Sb_arch_vlx.Encodings.set );
  ]

let read8_of bytes =
  let arr = Array.of_list bytes in
  fun a ->
    let i = a - base in
    if i >= 0 && i < Array.length arr then arr.(i) land 0xFF else 0

let each_case f =
  List.iter
    (fun ((module A : Sb_isa.Arch_sig.ARCH), set) ->
      List.iter
        (fun (cls : Encoding.cls) ->
          if cls.Encoding.skip = None then
            List.iter
              (fun (case : Encoding.case) ->
                f (module A : Sb_isa.Arch_sig.ARCH) set cls case)
              cls.Encoding.cases)
        set.Encoding.classes)
    sets

(* Every enumerated case decodes to a whole number of instructions tiling
   exactly its bytes — no partial trailing instruction.  (Most cases are a
   single instruction; a few, like an invalid condition byte, decode as a
   short undef followed by the leftover operand bytes.) *)
let test_cases_tile_their_bytes () =
  each_case (fun (module A) set cls case ->
      let read8 = read8_of case.Encoding.bytes in
      let len = List.length case.Encoding.bytes in
      let rec walk addr =
        if addr - base < len then
          let d = A.decode ~fetch8:read8 ~addr in
          walk (addr + max 1 d.Uop.length)
      else addr
      in
      let stop = walk base in
      if stop - base <> len then
        Alcotest.failf "%s %s (%s): stream of %d bytes decoded as %d"
          (Sb_isa.Arch_sig.arch_id_name set.Encoding.arch)
          cls.Encoding.name case.Encoding.label len (stop - base))

let test_roundtrip () =
  each_case (fun (module A) set cls case ->
      let arch_name = Sb_isa.Arch_sig.arch_id_name set.Encoding.arch in
      let read8 = read8_of case.Encoding.bytes in
      let len = List.length case.Encoding.bytes in
      let lines = Disasm.decode_range ~arch:(module A) ~read8 ~base ~len in
      if lines = [] then
        Alcotest.failf "%s %s (%s): no disassembly" arch_name cls.Encoding.name
          case.Encoding.label;
      (* the captured bytes, concatenated, are exactly the encoding *)
      let captured =
        List.concat_map
          (fun (l : Disasm.line) ->
            List.init (String.length l.Disasm.bytes) (fun i ->
                Char.code l.Disasm.bytes.[i]))
          lines
      in
      if captured <> case.Encoding.bytes then
        Alcotest.failf "%s %s (%s): disasm captured different bytes" arch_name
          cls.Encoding.name case.Encoding.label;
      List.iter
        (fun (line : Disasm.line) ->
          if String.length line.Disasm.text = 0 then
            Alcotest.failf "%s %s (%s): empty disassembly at 0x%x" arch_name
              cls.Encoding.name case.Encoding.label line.Disasm.addr;
          (* decoding each line's captured bytes at its address reproduces
             the micro-ops of the original stream decode *)
          let d = A.decode ~fetch8:read8 ~addr:line.Disasm.addr in
          let line_bytes =
            List.init (String.length line.Disasm.bytes) (fun i ->
                Char.code line.Disasm.bytes.[i])
          in
          (* beyond the line, fall back to the stream: a decode may peek at
             a following byte (e.g. the condition byte after 0x42) without
             consuming it *)
          let reread a =
            let i = a - line.Disasm.addr in
            if i >= 0 && i < List.length line_bytes then List.nth line_bytes i
            else read8 a
          in
          let d2 = A.decode ~fetch8:reread ~addr:line.Disasm.addr in
          if d2.Uop.uops <> d.Uop.uops || d2.Uop.length <> d.Uop.length then
            Alcotest.failf "%s %s (%s): round-trip decode differs at 0x%x"
              arch_name cls.Encoding.name case.Encoding.label line.Disasm.addr)
        lines)

(* The render is deterministic: same bytes, same text. *)
let test_render_stable () =
  each_case (fun (module A) set cls case ->
      let read8 = read8_of case.Encoding.bytes in
      let len = List.length case.Encoding.bytes in
      let once = Disasm.dump ~arch:(module A) ~read8 ~base ~len in
      let twice = Disasm.dump ~arch:(module A) ~read8 ~base ~len in
      if once <> twice then
        Alcotest.failf "%s %s (%s): unstable rendering"
          (Sb_isa.Arch_sig.arch_id_name set.Encoding.arch)
          cls.Encoding.name case.Encoding.label)

(* The enumerations really cover each decoder's whole selector space (the
   tv --strict gate asserts the same thing; this keeps it a unit test). *)
let test_enumeration_complete () =
  List.iter
    (fun ((module A : Sb_isa.Arch_sig.ARCH), set) ->
      let gaps, overlaps = Encoding.gaps set in
      Alcotest.(check (list int))
        (Sb_isa.Arch_sig.arch_id_name set.Encoding.arch ^ " gaps")
        [] gaps;
      Alcotest.(check (list int))
        (Sb_isa.Arch_sig.arch_id_name set.Encoding.arch ^ " overlaps")
        [] overlaps)
    sets

let () =
  Alcotest.run "sb_isa disasm"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "cases tile their bytes" `Quick
            test_cases_tile_their_bytes;
          Alcotest.test_case "decode-disasm-decode" `Quick test_roundtrip;
          Alcotest.test_case "render is stable" `Quick test_render_stable;
          Alcotest.test_case "enumeration complete" `Quick
            test_enumeration_complete;
        ] );
    ]
