(* Tests for deterministic fault injection (Sb_fault): plan generation is
   seeded and serializable, the bus-error injector keys off the
   architectural MMIO access ordinal, arming a plan perturbs the machine
   the way the plan says, injected faults actually reach the guest as
   data aborts, and — the point of the subsystem — every engine converges
   to the same architectural state under the same plan. *)

module Plan = Sb_fault.Plan
module Fault = Sb_fault.Fault
module Verify = Sb_verify.Verify

let contains haystack needle =
  let n = String.length needle in
  let rec loop i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || loop (i + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Plans                                                                *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let a = Plan.generate ~seed:7 and b = Plan.generate ~seed:7 in
  Alcotest.(check string) "same seed, same plan" (Plan.to_string a)
    (Plan.to_string b);
  let plans = List.init 6 (fun i -> Plan.to_string (Plan.generate ~seed:(i + 1))) in
  Alcotest.(check int) "distinct seeds, distinct plans" (List.length plans)
    (List.length (List.sort_uniq compare plans))

let test_plan_shape () =
  (* the generator's documented ranges, across a spread of seeds *)
  for seed = 1 to 50 do
    let p = Plan.generate ~seed in
    Alcotest.(check bool) "mmio chunks in range" true
      (p.Plan.mmio_chunks >= 4 && p.Plan.mmio_chunks <= 11);
    Alcotest.(check bool) "storm chunks in range" true
      (p.Plan.storm_chunks >= 0 && p.Plan.storm_chunks <= 3);
    Alcotest.(check bool) "at least one bus error" true
      (List.length p.Plan.bus_errors >= 1);
    List.iter
      (fun n ->
        Alcotest.(check bool) "ordinal within the plan's own traffic" true
          (n >= 0 && n < p.Plan.mmio_chunks))
      p.Plan.bus_errors
  done

let test_plan_json_round_trip () =
  let p = Plan.generate ~seed:11 in
  (match Plan.of_string (Plan.to_string p) with
  | Ok p' ->
    Alcotest.(check string) "round trip" (Plan.to_string p) (Plan.to_string p')
  | Error msg -> Alcotest.fail msg);
  (* wrong schema tag: rejected by name, not mis-decoded *)
  match Plan.of_string "{\"schema\":\"nonesuch-9\",\"seed\":1}" with
  | Ok _ -> Alcotest.fail "wrong schema must be rejected"
  | Error msg -> Alcotest.(check bool) "names the schema" true (contains msg "schema")

(* ------------------------------------------------------------------ *)
(* Injection mechanics                                                  *)
(* ------------------------------------------------------------------ *)

let test_bus_injector_ordinals () =
  let machine = Sb_sim.Machine.create () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.devid_base in
  Sb_mem.Bus.set_fault_injector bus
    (Some (fun ~nth ~rw:_ ~addr:_ -> nth = 1));
  ignore (Sb_mem.Bus.read32 bus base);
  (* the faulted access still consumes its ordinal: engines must agree on
     the numbering whether or not a hook fired *)
  (match Sb_mem.Bus.read32 bus base with
  | _ -> Alcotest.fail "second device access must raise"
  | exception Sb_mem.Bus.Fault addr ->
    Alcotest.(check int) "fault carries the address" base addr);
  ignore (Sb_mem.Bus.read32 bus base);
  Alcotest.(check int) "all three accesses counted" 3
    (Sb_mem.Bus.device_accesses bus);
  (* RAM is never intercepted, even with the injector armed *)
  Sb_mem.Bus.set_fault_injector bus (Some (fun ~nth:_ ~rw:_ ~addr:_ -> true));
  ignore (Sb_mem.Bus.read32 bus 0x1000);
  Sb_mem.Bus.set_fault_injector bus None;
  ignore (Sb_mem.Bus.read32 bus base)

let test_arm_applies_bit_flips () =
  let scratch = Simbench.Platform.sbp_ref.Simbench.Platform.scratch_base in
  let machine = Sb_sim.Machine.create () in
  let ram = Sb_mem.Bus.ram machine.Sb_sim.Machine.bus in
  let before = Sb_mem.Phys_mem.read8 ram (scratch + 100) in
  let plan =
    {
      Plan.seed = 1;
      mmio_chunks = 0;
      storm_chunks = 0;
      bus_errors = [];
      bit_flips = [ (100, 5) ];
      spurious_irqs = [ 9 ];
    }
  in
  Fault.arm plan machine;
  Alcotest.(check int) "bit 5 flipped" (before lxor 0x20)
    (Sb_mem.Phys_mem.read8 ram (scratch + 100));
  (* arming twice flips back: the xor is its own inverse *)
  Fault.arm plan machine;
  Alcotest.(check int) "second arm restores" before
    (Sb_mem.Phys_mem.read8 ram (scratch + 100))

let test_faults_reach_the_guest () =
  (* an explicit plan faulting the very first device access: the interp
     run must take (and survive) at least one data abort *)
  let plan =
    {
      Plan.seed = 3;
      mmio_chunks = 4;
      storm_chunks = 0;
      bus_errors = [ 0 ];
      bit_flips = [];
      spurious_irqs = [];
    }
  in
  let arch = Sb_isa.Arch_sig.Sba in
  let program = Fault.program ~arch plan in
  let engine = Simbench.Engines.interp arch in
  let o = Verify.run_outcome ~engine ~prepare:(Fault.arm plan) program in
  Alcotest.(check bool) "program still halts" true o.Verify.halted;
  let aborts = List.assoc "Data_abort" o.Verify.counters in
  Alcotest.(check bool) "at least one data abort taken" true (aborts >= 1);
  (* the same program unarmed takes none: the aborts came from the plan *)
  let clean = Verify.run_outcome ~engine program in
  Alcotest.(check int) "no aborts without the plan" 0
    (List.assoc "Data_abort" clean.Verify.counters)

let test_masked_irqs_do_not_leak () =
  (* spurious lines go pending but the guest never enables them: the run
     must take zero interrupts and end in the same state *)
  let arch = Sb_isa.Arch_sig.Sba in
  let plan_quiet =
    {
      Plan.seed = 5;
      mmio_chunks = 0;
      storm_chunks = 0;
      bus_errors = [];
      bit_flips = [];
      spurious_irqs = [];
    }
  in
  let plan_noisy = { plan_quiet with Plan.spurious_irqs = [ 3; 17; 29 ] } in
  let engine = Simbench.Engines.interp arch in
  let run plan =
    Verify.run_outcome ~engine ~prepare:(Fault.arm plan)
      (Fault.program ~arch plan)
  in
  let quiet = run plan_quiet and noisy = run plan_noisy in
  Alcotest.(check int) "no interrupts taken" 0
    (List.assoc "Irq_taken" noisy.Verify.counters);
  Alcotest.(check bool) "identical architectural state" true
    (quiet.Verify.regs = noisy.Verify.regs
    && quiet.Verify.memory_digest = noisy.Verify.memory_digest
    && quiet.Verify.counters = noisy.Verify.counters)

(* ------------------------------------------------------------------ *)
(* Differential convergence                                             *)
(* ------------------------------------------------------------------ *)

let check_sweep ~arch ~seeds =
  match Fault.sweep ~arch ~seeds () with
  | [] -> ()
  | d :: _ ->
    Alcotest.fail
      (Printf.sprintf "engines diverged under faults (seed %s): %s vs %s: %s"
         (match d.Verify.seed with Some s -> string_of_int s | None -> "?")
         d.Verify.reference_engine d.Verify.diverging_engine d.Verify.detail)

let test_differential_sba () = check_sweep ~arch:Sb_isa.Arch_sig.Sba ~seeds:3
let test_differential_vlx () = check_sweep ~arch:Sb_isa.Arch_sig.Vlx ~seeds:2

let () =
  Alcotest.run "sb_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "shape" `Quick test_plan_shape;
          Alcotest.test_case "json round trip" `Quick test_plan_json_round_trip;
        ] );
      ( "injection",
        [
          Alcotest.test_case "bus ordinals" `Quick test_bus_injector_ordinals;
          Alcotest.test_case "bit flips" `Quick test_arm_applies_bit_flips;
          Alcotest.test_case "faults reach the guest" `Quick
            test_faults_reach_the_guest;
          Alcotest.test_case "masked irqs stay masked" `Quick
            test_masked_irqs_do_not_leak;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sba engines converge" `Slow test_differential_sba;
          Alcotest.test_case "vlx engines converge" `Slow test_differential_vlx;
        ] );
    ]
