(* Tests for the parallel experiment scheduler (Sb_jobs) and its wiring
   into the report layer: a pool of forked workers must reproduce the
   sequential results, the on-disk cache must satisfy hits without
   forking, the cache key must move when any knob moves, and a worker
   that dies without reporting must surface as a failure, not a hang. *)

module Pool = Sb_jobs.Pool
module Cache = Sb_jobs.Cache
module Experiments = Sb_report.Experiments

let contains haystack needle =
  let n = String.length needle in
  let rec loop i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || loop (i + 1)
  in
  loop 0

let tmp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))
  in
  Cache.mkdir_p dir;
  dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_positional_results () =
  let tasks =
    List.init 7 (fun i ->
        Pool.task ~label:(string_of_int i) (fun () ->
            (* stagger so completion order differs from task order *)
            if i mod 2 = 0 then Unix.sleepf 0.02;
            i * i))
  in
  List.iter
    (fun jobs ->
      let results = Pool.run ~jobs tasks in
      Alcotest.(check int) "one result per task" 7 (List.length results);
      List.iteri
        (fun i -> function
          | Pool.Done v | Pool.Retried (v, _) ->
            Alcotest.(check int) (Printf.sprintf "task %d (j%d)" i jobs) (i * i) v
          | Pool.Failed f -> Alcotest.fail (Pool.failure_message f))
        results)
    [ 1; 3 ]

let test_thunk_exception_is_failed () =
  let tasks =
    [
      Pool.task ~label:"ok" (fun () -> 1);
      Pool.task ~label:"boom" (fun () -> failwith "kernel exploded");
      Pool.task ~label:"ok2" (fun () -> 3);
    ]
  in
  List.iter
    (fun jobs ->
      match Pool.run ~jobs tasks with
      | [ Pool.Done 1; Pool.Failed f; Pool.Done 3 ] ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions cause (j%d)" jobs)
          true
          (contains (Pool.failure_message f) "kernel exploded");
        Alcotest.(check bool)
          "kind is Crashed" true
          (f.Pool.fl_kind = Pool.Crashed)
      | _ -> Alcotest.fail "unexpected outcome shape")
    [ 1; 2 ]

let test_dead_worker_reported () =
  (* A worker that exits without writing a result must come back as
     [Failed] with the wait status — and must not wedge the pool or eat
     its siblings' results. *)
  let tasks =
    [
      Pool.task ~label:"before" (fun () -> "before");
      Pool.task ~label:"deserter" (fun () ->
          Unix._exit 3 (* dies without marshalling anything *));
      Pool.task ~label:"after" (fun () -> "after");
    ]
  in
  let stats = Pool.stats () in
  match Pool.run ~jobs:3 ~stats tasks with
  | [ Pool.Done "before"; Pool.Failed f; Pool.Done "after" ] ->
    Alcotest.(check bool)
      "status in message" true
      (contains f.Pool.fl_detail "exited with code 3");
    Alcotest.(check int) "failure counted" 1 stats.Pool.failed
  | _ -> Alcotest.fail "unexpected outcome shape"

let test_sigkilled_worker_reported () =
  (* the harsher death: the worker is killed by a signal mid-thunk *)
  let tasks =
    [
      Pool.task ~label:"victim" (fun () ->
          Unix.kill (Unix.getpid ()) Sys.sigkill;
          (* not reached *)
          "unreachable");
      Pool.task ~label:"survivor" (fun () -> "alive");
    ]
  in
  match Pool.run ~jobs:2 tasks with
  | [ Pool.Failed f; Pool.Done "alive" ] ->
    Alcotest.(check bool)
      "signal named" true
      (contains f.Pool.fl_detail "signal")
  | _ -> Alcotest.fail "unexpected outcome shape"

let test_truncated_payload_reported () =
  (* a worker that exits cleanly but with an empty/partial pipe payload
     must not wedge the parent's Marshal read: the unparsable payload
     surfaces as Failed, even though the exit status says success *)
  let tasks =
    [
      Pool.task ~label:"truncator" (fun () -> Unix._exit 0);
      Pool.task ~label:"whole" (fun () -> ());
    ]
  in
  match Pool.run ~jobs:2 tasks with
  | [ Pool.Failed f; Pool.Done () ] ->
    Alcotest.(check bool)
      "reports the missing result" true
      (contains f.Pool.fl_detail "without reporting")
  | _ -> Alcotest.fail "unexpected outcome shape"

(* ------------------------------------------------------------------ *)
(* Deadlines, retries, quarantine                                      *)
(* ------------------------------------------------------------------ *)

let test_deadline_kills_straggler () =
  let tasks =
    [
      Pool.task ~label:"hang" (fun () ->
          Unix.sleepf 30.0;
          "never");
      Pool.task ~label:"fast" (fun () -> "fast");
    ]
  in
  let stats = Pool.stats () in
  let t0 = Unix.gettimeofday () in
  (match Pool.run ~jobs:2 ~stats ~deadline:0.5 tasks with
  | [ Pool.Failed f; Pool.Done "fast" ] ->
    Alcotest.(check bool) "kind is Timed_out" true (f.Pool.fl_kind = Pool.Timed_out);
    Alcotest.(check bool) "deadline in message" true (contains f.Pool.fl_detail "deadline")
  | _ -> Alcotest.fail "unexpected outcome shape");
  Alcotest.(check bool)
    "returned promptly, not after 30s" true
    (Unix.gettimeofday () -. t0 < 10.0);
  Alcotest.(check int) "timeout counted" 1 stats.Pool.timed_out;
  Alcotest.(check int) "timeout is also a failure" 1 stats.Pool.failed

let test_deadline_applies_at_jobs_1 () =
  (* a deadline forces the forked path even sequentially: the straggler
     must still be killable *)
  let tasks = [ Pool.task ~label:"hang1" (fun () -> Unix.sleepf 30.0) ] in
  match Pool.run ~jobs:1 ~deadline:0.3 tasks with
  | [ Pool.Failed f ] ->
    Alcotest.(check bool) "timed out" true (f.Pool.fl_kind = Pool.Timed_out)
  | _ -> Alcotest.fail "unexpected outcome shape"

let test_retry_recovers_flaky_task () =
  (* fails on the first attempt, succeeds on the second: the flag file
     makes the flakiness visible across the forked processes *)
  let flag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sb_flaky_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  let tasks =
    [
      Pool.task ~label:"flaky" (fun () ->
          if Sys.file_exists flag then 42
          else begin
            let oc = open_out flag in
            close_out oc;
            failwith "first attempt bombs"
          end);
    ]
  in
  let stats = Pool.stats () in
  let result = Pool.run ~jobs:2 ~stats ~retries:2 ~backoff:0.01 tasks in
  if Sys.file_exists flag then Sys.remove flag;
  (match result with
  | [ Pool.Retried (42, 1) ] -> ()
  | [ Pool.Done _ ] -> Alcotest.fail "retry not surfaced as Retried"
  | _ -> Alcotest.fail "unexpected outcome shape");
  Alcotest.(check int) "retry counted" 1 stats.Pool.retried;
  Alcotest.(check int) "both attempts executed" 2 stats.Pool.executed;
  Alcotest.(check int) "no terminal failure" 0 stats.Pool.failed

let test_retries_exhausted_is_failed () =
  let tasks = [ Pool.task ~label:"always" (fun () -> failwith "always bombs") ] in
  let stats = Pool.stats () in
  (match Pool.run ~jobs:2 ~stats ~retries:1 ~backoff:0.01 tasks with
  | [ Pool.Failed f ] ->
    Alcotest.(check bool) "crashed" true (f.Pool.fl_kind = Pool.Crashed);
    Alcotest.(check int) "both attempts recorded" 2 f.Pool.fl_attempts
  | _ -> Alcotest.fail "unexpected outcome shape");
  Alcotest.(check int) "one retry scheduled" 1 stats.Pool.retried;
  Alcotest.(check int) "terminal failure counted" 1 stats.Pool.failed

let test_quarantine_after_repeated_failures () =
  Pool.reset_quarantine ();
  let mk () = [ Pool.task ~label:"repeat-offender" (fun () -> failwith "bombs") ] in
  (* quarantine_after defaults to 3: three failing runs accumulate the
     budget... *)
  for _ = 1 to !Pool.quarantine_after do
    match Pool.run ~jobs:2 (mk ()) with
    | [ Pool.Failed f ] ->
      Alcotest.(check bool) "still actually run" true (f.Pool.fl_kind = Pool.Crashed)
    | _ -> Alcotest.fail "unexpected outcome shape"
  done;
  (* ...and the next run is skipped instantly without forking *)
  let stats = Pool.stats () in
  (match Pool.run ~jobs:2 ~stats (mk ()) with
  | [ Pool.Failed f ] ->
    Alcotest.(check bool) "quarantined" true (f.Pool.fl_kind = Pool.Quarantined);
    Alcotest.(check int) "no attempt run" 0 f.Pool.fl_attempts
  | _ -> Alcotest.fail "unexpected outcome shape");
  Alcotest.(check int) "nothing forked" 0 stats.Pool.forked;
  Alcotest.(check int) "quarantine counted" 1 stats.Pool.quarantined;
  Pool.reset_quarantine ();
  (* after a reset the task runs again *)
  match Pool.run ~jobs:2 (mk ()) with
  | [ Pool.Failed f ] ->
    Alcotest.(check bool) "runs again after reset" true (f.Pool.fl_kind = Pool.Crashed)
  | _ -> Alcotest.fail "unexpected outcome shape"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_without_fork () =
  let dir = tmp_dir "sb_jobs_cache" in
  let cache = Cache.create ~dir in
  let tasks () =
    List.init 3 (fun i ->
        Pool.task
          ~key:(Cache.fingerprint ("cell", i))
          ~label:(string_of_int i)
          (fun () -> i + 100))
  in
  let cold = Pool.stats () in
  (match Pool.run ~jobs:2 ~cache ~stats:cold (tasks ()) with
  | [ Pool.Done 100; Pool.Done 101; Pool.Done 102 ] -> ()
  | _ -> Alcotest.fail "cold run wrong");
  Alcotest.(check int) "cold: all executed" 3 cold.Pool.executed;
  Alcotest.(check int) "cold: all forked" 3 cold.Pool.forked;
  Alcotest.(check int) "cold: no hits" 0 cold.Pool.cache_hits;
  let warm = Pool.stats () in
  (match Pool.run ~jobs:2 ~cache ~stats:warm (tasks ()) with
  | [ Pool.Done 100; Pool.Done 101; Pool.Done 102 ] -> ()
  | _ -> Alcotest.fail "warm run wrong");
  Alcotest.(check int) "warm: nothing executed" 0 warm.Pool.executed;
  Alcotest.(check int) "warm: nothing forked" 0 warm.Pool.forked;
  Alcotest.(check int) "warm: all hits" 3 warm.Pool.cache_hits;
  (* the sequential path uses the same cache *)
  let seq = Pool.stats () in
  ignore (Pool.run ~jobs:1 ~cache ~stats:seq (tasks ()));
  Alcotest.(check int) "seq: all hits too" 3 seq.Pool.cache_hits;
  Cache.clear cache;
  rm_rf dir

let test_cache_rejects_corruption () =
  let dir = tmp_dir "sb_jobs_corrupt" in
  let cache = Cache.create ~dir in
  Cache.store cache ~key:"deadbeef" 42;
  Alcotest.(check (option int)) "round trip" (Some 42) (Cache.load cache ~key:"deadbeef");
  (* truncate the file: load must degrade to a miss, not an exception *)
  let file =
    Filename.concat dir
      (List.find (fun f -> Filename.check_suffix f ".cache") (Array.to_list (Sys.readdir dir)))
  in
  let oc = open_out file in
  output_string oc "garbage";
  close_out oc;
  Alcotest.(check (option int)) "corrupt is a miss" None (Cache.load cache ~key:"deadbeef");
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Fsck                                                                *)
(* ------------------------------------------------------------------ *)

module Fsck = Sb_jobs.Fsck

let fsck_counts r =
  (r.Fsck.ok, r.Fsck.truncated, r.Fsck.key_mismatch, r.Fsck.stale_tmp,
   r.Fsck.live_tmp)

let test_fsck_classifies_damage () =
  let dir = tmp_dir "sb_jobs_fsck" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir in
  Cache.store cache ~key:"good" 1;
  Cache.store cache ~key:"torn" 2;
  Cache.store cache ~key:"moved" 3;
  (* tear one entry *)
  let oc = open_out (Filename.concat dir "sb_torn.cache") in
  output_string oc "garbage";
  close_out oc;
  (* put another under the wrong name *)
  Sys.rename
    (Filename.concat dir "sb_moved.cache")
    (Filename.concat dir "sb_elsewhere.cache");
  (* a temp file whose writer is long gone, and one whose writer lives *)
  let touch name =
    let oc = open_out (Filename.concat dir name) in
    close_out oc
  in
  touch "sb_x.cache.tmp.999999999";
  touch (Printf.sprintf "sb_y.cache.tmp.%d" (Unix.getpid ()));
  (* and a file fsck must never classify (no sb_ prefix) *)
  touch "README";
  (match Fsck.scan ~dir () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let ok, truncated, mismatch, stale, live = fsck_counts r in
    Alcotest.(check int) "ok entries" 1 ok;
    Alcotest.(check int) "truncated" 1 truncated;
    Alcotest.(check int) "key mismatch" 1 mismatch;
    Alcotest.(check int) "stale tmp" 1 stale;
    Alcotest.(check int) "live tmp" 1 live;
    Alcotest.(check bool) "dirty store is not clean" false (Fsck.clean r);
    Alcotest.(check int) "nothing removed without repair" 0 r.Fsck.repaired);
  (* a dry scan removed nothing *)
  Alcotest.(check bool) "torn file still there" true
    (Sys.file_exists (Filename.concat dir "sb_torn.cache"));
  (* repair evicts exactly the damage *)
  (match Fsck.scan ~repair:true ~dir () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check int) "three repaired" 3 r.Fsck.repaired;
    Alcotest.(check int) "none unrepairable" 0 r.Fsck.unrepairable);
  Alcotest.(check bool) "good entry survived" true
    (Sys.file_exists (Filename.concat dir "sb_good.cache"));
  Alcotest.(check bool) "live tmp survived" true
    (Sys.file_exists
       (Filename.concat dir (Printf.sprintf "sb_y.cache.tmp.%d" (Unix.getpid ()))));
  Alcotest.(check bool) "unrelated file untouched" true
    (Sys.file_exists (Filename.concat dir "README"));
  Alcotest.(check bool) "torn file evicted" false
    (Sys.file_exists (Filename.concat dir "sb_torn.cache"));
  (* after repair the store scans clean, and the good entry still loads *)
  (match Fsck.scan ~dir () with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check bool) "clean after repair" true (Fsck.clean r));
  Alcotest.(check (option int)) "good entry still loads" (Some 1)
    (Cache.load cache ~key:"good")

let test_fsck_json_report () =
  let dir = tmp_dir "sb_jobs_fsck_json" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir in
  Cache.store cache ~key:"fine" 9;
  let oc = open_out (Filename.concat dir "sb_bad.cache") in
  output_string oc "x";
  close_out oc;
  match Fsck.scan ~dir () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let j = Fsck.report_to_json r in
    let int_field name =
      match Option.bind (Sb_util.Json.member name j) Sb_util.Json.int_opt with
      | Some n -> n
      | None -> Alcotest.fail ("missing field " ^ name)
    in
    Alcotest.(check int) "ok count" 1 (int_field "ok");
    Alcotest.(check int) "truncated count" 1 (int_field "truncated");
    (match Sb_util.Json.member "clean" j with
    | Some (Sb_util.Json.Bool false) -> ()
    | _ -> Alcotest.fail "clean must be false");
    (* only the damaged entries are listed *)
    match Sb_util.Json.member "entries" j with
    | Some (Sb_util.Json.List [ Sb_util.Json.Obj fields ]) ->
      (match List.assoc_opt "verdict" fields with
      | Some (Sb_util.Json.String "truncated") -> ()
      | _ -> Alcotest.fail "expected a truncated verdict")
    | _ -> Alcotest.fail "expected exactly one listed entry"

let test_fingerprint_moves_with_knobs () =
  let base_config = Experiments.quick_config in
  let fp ?(config = base_config) ?(arch = Sb_isa.Arch_sig.Sba)
      ?(kind = (`Suite : Experiments.cell_kind)) dbt =
    Experiments.cell_fingerprint ~config ~arch ~kind dbt
  in
  let base = fp Sb_dbt.Config.baseline in
  Alcotest.(check string) "deterministic" base (fp Sb_dbt.Config.baseline);
  let variants =
    [
      ("arch", fp ~arch:Sb_isa.Arch_sig.Vlx Sb_dbt.Config.baseline);
      ("kind", fp ~kind:(`Workloads 7) Sb_dbt.Config.baseline);
      ("scale", fp ~config:{ base_config with Experiments.scale = base_config.Experiments.scale + 1 }
           Sb_dbt.Config.baseline);
      ("repeats", fp ~config:{ base_config with Experiments.repeats = base_config.Experiments.repeats + 1 }
           Sb_dbt.Config.baseline);
      ( "engine knob",
        fp { Sb_dbt.Config.baseline with Sb_dbt.Config.chain_direct = not Sb_dbt.Config.baseline.Sb_dbt.Config.chain_direct } );
      ( "front cache knob",
        fp { Sb_dbt.Config.baseline with Sb_dbt.Config.front_cache = not Sb_dbt.Config.baseline.Sb_dbt.Config.front_cache } );
    ]
  in
  List.iter
    (fun (what, fp') ->
      Alcotest.(check bool) (what ^ " changes the key") true (fp' <> base))
    variants;
  (* and the variant keys are pairwise distinct *)
  let keys = base :: List.map snd variants in
  let uniq = List.sort_uniq compare keys in
  Alcotest.(check int) "all keys distinct" (List.length keys) (List.length uniq)

(* ------------------------------------------------------------------ *)
(* Pool == sequential on real experiment cells                         *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let config = Experiments.quick_config in
  let arch = Sb_isa.Arch_sig.Sba in
  let rows ~jobs =
    Experiments.reset_memo ();
    Experiments.cell_rows
      ~opts:{ Experiments.jobs; cache_dir = None; deadline = None; retries = 0 }
      ~config ~arch ~kind:`Suite Sb_dbt.Config.baseline
  in
  let seq = rows ~jobs:1 in
  let par = rows ~jobs:2 in
  Alcotest.(check int) "same cell count" (List.length seq) (List.length par);
  List.iter2
    (fun (s : Experiments.row) (p : Experiments.row) ->
      Alcotest.(check string) "same benchmark" s.Experiments.row_cell p.Experiments.row_cell;
      Alcotest.(check string) "same engine" s.Experiments.row_engine p.Experiments.row_engine;
      Alcotest.(check string) "same arch" s.Experiments.row_arch p.Experiments.row_arch;
      Alcotest.(check int) "same iters" s.Experiments.row_iters p.Experiments.row_iters;
      (* instruction counts are deterministic across processes; wall times
         are not, so the times are only sanity-checked *)
      Alcotest.(check int) "same kernel insns" s.Experiments.row_kernel_insns
        p.Experiments.row_kernel_insns;
      Alcotest.(check bool) "positive time" true (p.Experiments.row_seconds > 0.))
    seq par

let test_cell_rows_cached_on_disk () =
  let dir = tmp_dir "sb_jobs_cells" in
  let config = Experiments.quick_config in
  let arch = Sb_isa.Arch_sig.Sba in
  let opts =
    { Experiments.jobs = 2; cache_dir = Some dir; deadline = None; retries = 0 }
  in
  let rows ~opts =
    Experiments.reset_memo ();
    Experiments.cell_rows ~opts ~config ~arch ~kind:`Suite Sb_dbt.Config.baseline
  in
  let first = rows ~opts in
  (* second pass: memo was dropped, so everything must come from disk —
     including the measured times, which therefore match exactly *)
  let second = rows ~opts in
  List.iter2
    (fun (a : Experiments.row) (b : Experiments.row) ->
      Alcotest.(check string) "cell" a.Experiments.row_cell b.Experiments.row_cell;
      Alcotest.(check (float 0.)) "seconds bit-identical from cache"
        a.Experiments.row_seconds b.Experiments.row_seconds)
    first second;
  rm_rf dir

(* --- cancellation tokens & external scheduling ----------------------- *)

let test_cancelled_token_skips_everything () =
  let tok = Pool.token () in
  Pool.cancel tok;
  let stats = Pool.stats () in
  let tasks =
    List.init 3 (fun i -> Pool.task ~label:(Printf.sprintf "t%d" i) (fun () -> i))
  in
  List.iter
    (fun jobs ->
      List.iter
        (function
          | Pool.Failed f ->
            Alcotest.(check bool) "kind is Cancelled" true
              (f.Pool.fl_kind = Pool.Cancelled);
            Alcotest.(check int) "no attempts run" 0 f.Pool.fl_attempts
          | _ -> Alcotest.fail "expected Failed Cancelled")
        (Pool.run ~jobs ~stats ~cancel:tok tasks))
    [ 1; 3 ];
  Alcotest.(check int) "all counted cancelled" 6 stats.Pool.cancelled;
  Alcotest.(check int) "nothing forked" 0 stats.Pool.forked

let test_sequential_thunk_cancels_remainder () =
  (* at jobs=1 the thunks run in-process, so a task can cancel the rest *)
  let tok = Pool.token () in
  let task label v = Pool.task ~label (fun () -> v) in
  let tasks =
    [
      Pool.task ~label:"first" (fun () ->
          Pool.cancel tok;
          "ran");
      task "second" "ran";
      task "third" "ran";
    ]
  in
  match Pool.run ~jobs:1 ~cancel:tok tasks with
  | [ Pool.Done "ran"; Pool.Failed f2; Pool.Failed f3 ] ->
    Alcotest.(check bool) "second cancelled" true
      (f2.Pool.fl_kind = Pool.Cancelled);
    Alcotest.(check bool) "third cancelled" true
      (f3.Pool.fl_kind = Pool.Cancelled)
  | _ -> Alcotest.fail "expected Done then two Cancelled"

let test_sched_external_select_loop () =
  (* the serve daemon's usage: callers own the select loop and feed
     readable fds to pump *)
  let stats = Pool.stats () in
  let s = Pool.Sched.create ~jobs:2 ~stats () in
  let got = Array.make 5 None in
  for i = 0 to 4 do
    Pool.Sched.submit s
      (Pool.task ~label:(Printf.sprintf "mul%d" i) (fun () -> i * 3))
      ~k:(fun o -> got.(i) <- Some o)
  done;
  let deadline = Unix.gettimeofday () +. 60.0 in
  while (not (Pool.Sched.idle s)) && Unix.gettimeofday () < deadline do
    let tmo = Pool.Sched.timeout s in
    let tmo = if tmo < 0.0 then 0.2 else Float.min tmo 0.2 in
    let readable, _, _ =
      try Unix.select (Pool.Sched.fds s) [] [] tmo
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Pool.Sched.pump s ~readable
  done;
  Alcotest.(check bool) "scheduler drained" true (Pool.Sched.idle s);
  Array.iteri
    (fun i o ->
      match o with
      | Some (Pool.Done v) -> Alcotest.(check int) "positional result" (i * 3) v
      | _ -> Alcotest.fail "missing or failed outcome")
    got;
  Alcotest.(check int) "five attempts run" 5 stats.Pool.executed

let test_sched_cancel_drops_queued_only () =
  (* cancelling from a completion callback must drop queued work without
     SIGKILLing the worker that is already running *)
  let stats = Pool.stats () in
  let s = Pool.Sched.create ~jobs:1 ~stats () in
  let tok = Pool.token () in
  let outcomes = Array.make 4 None in
  Pool.Sched.submit s
    (Pool.task ~label:"runner" (fun () ->
         Unix.sleepf 0.05;
         "ran"))
    ~k:(fun o ->
      Pool.cancel tok;
      outcomes.(0) <- Some o);
  for i = 1 to 3 do
    Pool.Sched.submit s ~cancel:tok
      (Pool.task ~label:(Printf.sprintf "queued%d" i) (fun () -> "ran"))
      ~k:(fun o -> outcomes.(i) <- Some o)
  done;
  Pool.Sched.drain s;
  (match outcomes.(0) with
  | Some (Pool.Done "ran") -> ()
  | _ -> Alcotest.fail "running task should complete, not be killed");
  for i = 1 to 3 do
    match outcomes.(i) with
    | Some (Pool.Failed f) ->
      Alcotest.(check bool) "queued task cancelled" true
        (f.Pool.fl_kind = Pool.Cancelled)
    | _ -> Alcotest.fail "queued task should be dropped as Cancelled"
  done;
  Alcotest.(check int) "three cancellations counted" 3 stats.Pool.cancelled;
  Alcotest.(check int) "only the runner forked" 1 stats.Pool.forked;
  Alcotest.(check bool) "drained" true (Pool.Sched.idle s)

let () =
  Random.self_init ();
  Alcotest.run "sb_jobs"
    [
      ( "pool",
        [
          Alcotest.test_case "positional results" `Quick test_positional_results;
          Alcotest.test_case "thunk exception" `Quick test_thunk_exception_is_failed;
          Alcotest.test_case "dead worker" `Quick test_dead_worker_reported;
          Alcotest.test_case "sigkilled worker" `Quick test_sigkilled_worker_reported;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload_reported;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "deadline kills straggler" `Quick test_deadline_kills_straggler;
          Alcotest.test_case "deadline at jobs=1" `Quick test_deadline_applies_at_jobs_1;
          Alcotest.test_case "retry recovers flaky" `Quick test_retry_recovers_flaky_task;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted_is_failed;
          Alcotest.test_case "quarantine" `Quick test_quarantine_after_repeated_failures;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit without fork" `Quick test_cache_hit_without_fork;
          Alcotest.test_case "corruption is a miss" `Quick test_cache_rejects_corruption;
          Alcotest.test_case "fsck classifies damage" `Quick test_fsck_classifies_damage;
          Alcotest.test_case "fsck json report" `Quick test_fsck_json_report;
          Alcotest.test_case "fingerprint knobs" `Quick test_fingerprint_moves_with_knobs;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancelled token skips all" `Quick
            test_cancelled_token_skips_everything;
          Alcotest.test_case "thunk cancels remainder" `Quick
            test_sequential_thunk_cancels_remainder;
          Alcotest.test_case "external select loop" `Quick
            test_sched_external_select_loop;
          Alcotest.test_case "cancel drops queued only" `Quick
            test_sched_cancel_drops_queued_only;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "pool == sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "disk cache round trip" `Quick test_cell_rows_cached_on_disk;
        ] );
    ]
