(* Unit tests for DBT internals: IR optimiser, page cache, version table. *)

module Uop = Sb_isa.Uop
module Ir = Sb_dbt.Ir
module Pc = Sb_dbt.Page_cache

let mk_insn ?(va = 0x1000) ?(len = 4) uops = { Ir.va; len; uops }

let alu ?(flags = false) op rd rn rm =
  Uop.Alu { op; rd = Some rd; rn; rm; set_flags = flags }

(* ---------------- IR optimiser ---------------- *)

let test_const_prop_folds_movw_movt () =
  (* movw r1,#0xBEEF ; movt r1,#0xDEAD ; add r2, r1, #1 *)
  let ir =
    [|
      mk_insn [ alu Uop.Orr 1 (Uop.Imm 0) (Uop.Imm 0xBEEF) ];
      mk_insn
        [
          alu Uop.And_ 1 (Uop.Reg 1) (Uop.Imm 0xFFFF);
          alu Uop.Orr 1 (Uop.Reg 1) (Uop.Imm (0xDEAD lsl 16));
        ];
      mk_insn [ alu Uop.Add 2 (Uop.Reg 1) (Uop.Imm 1) ];
    |]
  in
  Ir.const_prop ir;
  (match ir.(2).Ir.uops with
  | [ Uop.Alu { rn = Uop.Imm 0; rm = Uop.Imm v; op = Uop.Orr; _ } ] ->
    Alcotest.(check int) "folded through movw/movt" 0xDEADBEF0 v
  | [ u ] -> Alcotest.failf "unexpected uop %s" (Format.asprintf "%a" Uop.pp u)
  | _ -> Alcotest.fail "shape");
  (* the register writes to r1 remain architectural *)
  match ir.(0).Ir.uops with
  | [ Uop.Alu { rd = Some 1; _ } ] -> ()
  | _ -> Alcotest.fail "movw write must remain"

let test_const_prop_kills_on_load () =
  let ir =
    [|
      mk_insn [ alu Uop.Orr 1 (Uop.Imm 0) (Uop.Imm 42) ];
      mk_insn [ Uop.Load { width = Uop.W32; rd = 1; base = Uop.Reg 2; offset = 0; user = false } ];
      mk_insn [ alu Uop.Add 3 (Uop.Reg 1) (Uop.Imm 0) ];
    |]
  in
  Ir.const_prop ir;
  match ir.(2).Ir.uops with
  | [ Uop.Alu { rn = Uop.Reg 1; _ } ] -> ()
  | _ -> Alcotest.fail "constant must be killed by the load"

let test_const_prop_no_fold_when_flags () =
  let ir = [| mk_insn [ alu ~flags:true Uop.Sub 1 (Uop.Imm 5) (Uop.Imm 5) ] |] in
  Ir.const_prop ir;
  match ir.(0).Ir.uops with
  | [ Uop.Alu { set_flags = true; op = Uop.Sub; _ } ] -> ()
  | _ -> Alcotest.fail "flag-setting op must not fold"

let test_const_prop_link_register_known () =
  let ir =
    [|
      mk_insn ~va:0x2000 ~len:4
        [ Uop.Branch { cond = Uop.Always; target = Uop.Direct 0x3000; link = Some 14 } ];
    |]
  in
  (* a later block-internal use cannot exist after a branch, but the
     propagation itself must record lr = 0x2004 without raising *)
  Ir.const_prop ir;
  ()

let test_nop_elim_keeps_slot () =
  let ir = [| mk_insn [ Uop.Nop ]; mk_insn [ alu Uop.Add 1 (Uop.Reg 1) (Uop.Imm 1) ] |] in
  Ir.nop_elim ir;
  Alcotest.(check int) "slots preserved" 2 (Array.length ir);
  Alcotest.(check int) "nop removed" 0 (List.length ir.(0).Ir.uops)

let test_peephole_identities () =
  let ir =
    [|
      mk_insn [ alu Uop.Add 1 (Uop.Reg 1) (Uop.Imm 0) ];
      mk_insn [ alu Uop.Add 2 (Uop.Reg 1) (Uop.Imm 0) ];
      mk_insn [ alu Uop.Mul 3 (Uop.Reg 1) (Uop.Imm 1) ];
    |]
  in
  Ir.peephole ir;
  Alcotest.(check int) "add r1,r1,#0 dropped" 0 (List.length ir.(0).Ir.uops);
  (match ir.(1).Ir.uops with
  | [ Uop.Alu { op = Uop.Orr; rm = Uop.Imm 0; _ } ] -> ()
  | _ -> Alcotest.fail "add rd,rn,#0 becomes move");
  match ir.(2).Ir.uops with
  | [ Uop.Alu { op = Uop.Orr; rm = Uop.Imm 0; _ } ] -> ()
  | _ -> Alcotest.fail "mul by 1 becomes move"

let test_run_clamps_passes () =
  let ir = [| mk_insn [ Uop.Nop ] |] in
  Alcotest.(check int) "clamped" (List.length Ir.pass_names) (Ir.run ~passes:99 ir);
  Alcotest.(check int) "zero" 0 (Ir.run ~passes:0 ir)

(* Property: the optimiser preserves the meaning of straight-line ALU IR.
   A tiny reference evaluator executes the register-file semantics of an IR
   block; running any pass budget over the block must not change the final
   register file. *)
let eval_ir regs (ir : Ir.t) =
  let regs = Array.copy regs in
  Array.iter
    (fun (insn : Ir.insn) ->
      List.iter
        (fun uop ->
          match uop with
          | Uop.Nop -> ()
          | Uop.Alu { op; rd; rn; rm; set_flags = false } -> (
            let value = function
              | Uop.Reg r -> regs.(r)
              | Uop.Imm v -> v land 0xFFFF_FFFF
            in
            match rd with
            | Some rd -> regs.(rd) <- Sb_sim.Alu_eval.eval op (value rn) (value rm)
            | None -> ())
          | _ -> failwith "straight-line ALU only")
        insn.Ir.uops)
    ir;
  regs

let gen_alu_ir =
  let open QCheck.Gen in
  let op =
    oneofl
      [ Uop.Add; Uop.Sub; Uop.And_; Uop.Orr; Uop.Xor; Uop.Mul; Uop.Lsl; Uop.Lsr ]
  in
  let operand =
    oneof [ map (fun r -> Uop.Reg r) (int_bound 7); map (fun v -> Uop.Imm v) (int_bound 0xFFFF) ]
  in
  let insn i =
    map3
      (fun op rd (rn, rm) ->
        {
          Ir.va = 0x1000 + (4 * i);
          len = 4;
          uops = [ Uop.Alu { op; rd = Some rd; rn; rm; set_flags = false } ];
        })
      op (int_bound 7) (pair operand operand)
  in
  sized (fun n ->
      let n = max 1 (n mod 24) in
      map Array.of_list (flatten_l (List.init n insn)))

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimiser preserves straight-line semantics" ~count:300
    (QCheck.make gen_alu_ir)
    (fun ir ->
      let regs = Array.init 16 (fun i -> (i * 0x01010101) land 0xFFFF_FFFF) in
      let copy_ir =
        Array.map (fun (i : Ir.insn) -> { i with Ir.uops = i.Ir.uops }) ir
      in
      let before = eval_ir regs ir in
      ignore (Ir.run ~passes:4 copy_ir);
      let after = eval_ir regs copy_ir in
      before = after)

(* ---------------- page cache ---------------- *)

let entry ?(asid = 0) vpn ppn = { Pc.vpn; ppn; ap = 0; xn = false; asid }

let test_page_cache_l1 () =
  let pc = Pc.create ~l1_entries:16 ~l2_entries:0 ~lazy_flush:false in
  Alcotest.(check bool) "empty" true (Pc.lookup_l1 pc ~vpn:3 ~asid:0 = None);
  Pc.insert pc (entry 3 7);
  (match Pc.lookup_l1 pc ~vpn:3 ~asid:0 with
  | Some e -> Alcotest.(check int) "ppn" 7 e.Pc.ppn
  | None -> Alcotest.fail "hit expected");
  Alcotest.(check bool) "aliasing vpn misses" true (Pc.lookup_l1 pc ~vpn:19 ~asid:0 = None)

let test_page_cache_l2_promotion () =
  let pc = Pc.create ~l1_entries:4 ~l2_entries:64 ~lazy_flush:false in
  Pc.insert pc (entry 1 10);
  (* conflicting insert demotes vpn 1 to L2 *)
  Pc.insert pc (entry 5 20);
  Alcotest.(check bool) "evicted from L1" true (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None);
  (match Pc.lookup_l2 pc ~vpn:1 ~asid:0 with
  | Some e -> Alcotest.(check int) "found in L2" 10 e.Pc.ppn
  | None -> Alcotest.fail "L2 victim expected");
  (* lookup_l2 promotes back to L1 *)
  Alcotest.(check bool) "promoted" true (Pc.lookup_l1 pc ~vpn:1 ~asid:0 <> None)

let test_page_cache_flush_modes () =
  let eager = Pc.create ~l1_entries:8 ~l2_entries:8 ~lazy_flush:false in
  Pc.insert eager (entry 1 1);
  Pc.flush eager;
  Alcotest.(check bool) "eager cleared" true (Pc.lookup_l1 eager ~vpn:1 ~asid:0 = None);
  Alcotest.(check bool) "eager pays" true (Pc.flush_cost eager > 0);
  let lazy_ = Pc.create ~l1_entries:8 ~l2_entries:8 ~lazy_flush:true in
  Pc.insert lazy_ (entry 1 1);
  Pc.flush lazy_;
  Alcotest.(check bool) "lazy cleared" true (Pc.lookup_l1 lazy_ ~vpn:1 ~asid:0 = None);
  Alcotest.(check int) "lazy free" 0 (Pc.flush_cost lazy_);
  (* entries inserted after a lazy flush are visible *)
  Pc.insert lazy_ (entry 2 2);
  Alcotest.(check bool) "new gen entry" true (Pc.lookup_l1 lazy_ ~vpn:2 ~asid:0 <> None)

(* the eager cost is the whole geometry (both levels are cleared), and it is
   re-reported per flush; the lazy path reports 0 forever *)
let test_page_cache_flush_cost_reporting () =
  let eager = Pc.create ~l1_entries:8 ~l2_entries:32 ~lazy_flush:false in
  Alcotest.(check int) "no flush yet" 0 (Pc.flush_cost eager);
  Pc.flush eager;
  Alcotest.(check int) "eager cost = l1+l2" 40 (Pc.flush_cost eager);
  Pc.flush eager;
  Alcotest.(check int) "cost again" 40 (Pc.flush_cost eager);
  let no_l2 = Pc.create ~l1_entries:16 ~l2_entries:0 ~lazy_flush:false in
  Pc.flush no_l2;
  Alcotest.(check int) "l1-only cost" 16 (Pc.flush_cost no_l2);
  let lazy_ = Pc.create ~l1_entries:8 ~l2_entries:32 ~lazy_flush:true in
  Pc.flush lazy_;
  Pc.flush lazy_;
  Alcotest.(check int) "lazy always free" 0 (Pc.flush_cost lazy_)

(* lazy flushing is generation bumping: stale entries in both levels become
   invisible without being cleared, every flush opens a fresh generation,
   and promotion never resurrects a stale generation *)
let test_page_cache_lazy_generations () =
  let pc = Pc.create ~l1_entries:4 ~l2_entries:64 ~lazy_flush:true in
  (* vpn 1 demoted to L2 by a conflicting insert, then the flush strands it *)
  Pc.insert pc (entry 1 10);
  Pc.insert pc (entry 5 20);
  (match Pc.lookup_l2 pc ~vpn:1 ~asid:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "victim expected in L2 before flush");
  Pc.flush pc;
  Alcotest.(check bool) "stale L1 invisible" true (Pc.lookup_l1 pc ~vpn:5 ~asid:0 = None);
  Alcotest.(check bool) "stale L2 not promoted" true
    (Pc.lookup_l2 pc ~vpn:1 ~asid:0 = None);
  Alcotest.(check bool) "and not in L1 either" true
    (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None);
  (* entries of the new generation behave normally, including demotion and
     promotion within that generation *)
  Pc.insert pc (entry 1 11);
  Pc.insert pc (entry 5 21);
  Alcotest.(check bool) "new gen L1 miss after conflict" true
    (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None);
  (match Pc.lookup_l2 pc ~vpn:1 ~asid:0 with
  | Some e -> Alcotest.(check int) "new gen promoted value" 11 e.Pc.ppn
  | None -> Alcotest.fail "new-generation victim expected in L2");
  Alcotest.(check bool) "promoted to L1" true (Pc.lookup_l1 pc ~vpn:1 ~asid:0 <> None);
  (* a second flush strands the new generation too *)
  Pc.flush pc;
  Alcotest.(check bool) "second flush hides" true
    (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None && Pc.lookup_l2 pc ~vpn:1 ~asid:0 = None)

let test_page_cache_l2_disabled () =
  let pc = Pc.create ~l1_entries:4 ~l2_entries:0 ~lazy_flush:false in
  Pc.insert pc (entry 1 10);
  (* conflicting insert has nowhere to demote to: the victim is just lost *)
  Pc.insert pc (entry 5 20);
  Alcotest.(check bool) "no l2" true (Pc.lookup_l2 pc ~vpn:1 ~asid:0 = None);
  Alcotest.(check bool) "victim gone" true (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None);
  (match Pc.lookup_l1 pc ~vpn:5 ~asid:0 with
  | Some e -> Alcotest.(check int) "winner present" 20 e.Pc.ppn
  | None -> Alcotest.fail "winner expected")

let test_page_cache_asid_tagging () =
  let pc = Pc.create ~l1_entries:16 ~l2_entries:0 ~lazy_flush:false in
  Pc.insert pc (entry ~asid:1 7 100);
  Pc.insert pc (entry ~asid:2 7 200);
  (* both address spaces' translations coexist *)
  (match Pc.lookup_l1 pc ~vpn:7 ~asid:1 with
  | Some e -> Alcotest.(check int) "asid 1" 100 e.Pc.ppn
  | None -> Alcotest.fail "asid 1 entry lost");
  (match Pc.lookup_l1 pc ~vpn:7 ~asid:2 with
  | Some e -> Alcotest.(check int) "asid 2" 200 e.Pc.ppn
  | None -> Alcotest.fail "asid 2 entry lost");
  Alcotest.(check bool) "other asid misses" true (Pc.lookup_l1 pc ~vpn:7 ~asid:3 = None);
  (* ASID-qualified invalidation *)
  Pc.invalidate_page pc ~vpn:7 ~asid:1;
  Alcotest.(check bool) "asid1 gone" true (Pc.lookup_l1 pc ~vpn:7 ~asid:1 = None);
  Alcotest.(check bool) "asid2 kept" true (Pc.lookup_l1 pc ~vpn:7 ~asid:2 <> None)

let test_page_cache_invalidate_page () =
  let pc = Pc.create ~l1_entries:8 ~l2_entries:8 ~lazy_flush:false in
  Pc.insert pc (entry 1 1);
  Pc.insert pc (entry 2 2);
  Pc.invalidate_page pc ~vpn:1 ~asid:0;
  Alcotest.(check bool) "gone" true (Pc.lookup_l1 pc ~vpn:1 ~asid:0 = None);
  Alcotest.(check bool) "kept" true (Pc.lookup_l1 pc ~vpn:2 ~asid:0 <> None)

(* ---------------- version table ---------------- *)

let test_version_table () =
  Alcotest.(check int) "twenty-two releases" 22 (List.length Sb_dbt.Version.all);
  Alcotest.(check string) "baseline first" Sb_dbt.Version.baseline_name
    (fst (List.hd Sb_dbt.Version.all));
  Alcotest.(check bool) "find known" true (Sb_dbt.Version.find "v2.0.0" <> None);
  Alcotest.(check bool) "find unknown" true (Sb_dbt.Version.find "v9.9.9" = None);
  (* documented trajectory: the data-fault fast path appears at 2.5.0-rc0 *)
  let cfg v = Option.get (Sb_dbt.Version.find v) in
  Alcotest.(check bool) "no fast path before" false
    (cfg "v2.4.1").Sb_dbt.Config.data_fault_fast_path;
  Alcotest.(check bool) "fast path at rc0" true
    (cfg "v2.5.0-rc0").Sb_dbt.Config.data_fault_fast_path;
  (* optimiser budget rises at 2.0.0 *)
  Alcotest.(check bool) "tcg optimiser" true
    ((cfg "v2.0.0").Sb_dbt.Config.opt_passes > (cfg "v1.7.0").Sb_dbt.Config.opt_passes);
  (* dispatch-path verification work only grows *)
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      a.Sb_dbt.Config.chain_verify_work <= b.Sb_dbt.Config.chain_verify_work
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "chain verify monotone" true (monotone Sb_dbt.Version.all);
  (* hot-trace superblocks appear at 2.6.0 and nowhere before *)
  Alcotest.(check int) "no traces before" 0
    (cfg "v2.5.0-rc2").Sb_dbt.Config.trace_threshold;
  Alcotest.(check bool) "traces at 2.6.0" true
    ((cfg "v2.6.0").Sb_dbt.Config.trace_threshold > 0
    && (cfg "v2.6.0").Sb_dbt.Config.max_trace_blocks >= 2);
  (* the contemporary default enables traces like the newest entry *)
  Alcotest.(check int) "default traces on"
    (cfg "v2.6.0").Sb_dbt.Config.trace_threshold
    Sb_dbt.Config.default.Sb_dbt.Config.trace_threshold;
  (* threaded code with register caching appears at 2.7.0 and nowhere
     before; the contemporary default matches *)
  Alcotest.(check bool) "no threaded code before" false
    (cfg "v2.6.0").Sb_dbt.Config.threaded;
  Alcotest.(check bool) "no reg cache before" false
    (cfg "v2.6.0").Sb_dbt.Config.reg_cache;
  Alcotest.(check bool) "threaded at 2.7.0" true
    ((cfg "v2.7.0").Sb_dbt.Config.threaded
    && (cfg "v2.7.0").Sb_dbt.Config.reg_cache);
  Alcotest.(check bool) "default is threaded" true
    (Sb_dbt.Config.default.Sb_dbt.Config.threaded
    && Sb_dbt.Config.default.Sb_dbt.Config.reg_cache);
  Alcotest.(check bool) "baseline is not" false
    Sb_dbt.Config.baseline.Sb_dbt.Config.threaded

(* Optimised and unoptimised DBT engines must agree architecturally: run a
   program that the optimiser rewrites heavily under both pass budgets. *)
module Dbt_opt = Sb_dbt.Dbt.Make (Sb_arch_sba.Arch)

module Dbt_noopt =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config = { Sb_dbt.Config.baseline with Sb_dbt.Config.opt_passes = 0 }
    end)

let test_opt_equivalence () =
  let module SI = Sb_arch_sba.Insn in
  let open Sb_asm.Assembler in
  let insns l = List.map (fun i -> Insn i) l in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ insns
          (SI.li 1 0xDEADBEEF
          @ SI.li 2 0x12345678
          @ [
              SI.Add (3, 1, SI.Rm 2);
              SI.Mul (4, 3, 2);
              SI.Add (5, 4, SI.Imm 0);
              SI.Xor (6, 5, 1);
              SI.Lsr (7, 6, SI.Imm 3);
              SI.Halt;
            ]))
  in
  let run engine =
    let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
    Sb_sim.Machine.load_program machine program;
    ignore (Sb_sim.Engine.run engine ~max_insns:1000 machine);
    Array.sub machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs 0 8
  in
  Alcotest.(check (array int)) "same registers" (run (module Dbt_noopt)) (run (module Dbt_opt))

(* ---------------- hot-trace superblocks ---------------- *)

module Dbt_traces =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config =
        {
          Sb_dbt.Config.default with
          Sb_dbt.Config.trace_threshold = 4;
          max_trace_blocks = 8;
        }
    end)

module Dbt_notrace =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config = { Sb_dbt.Config.default with Sb_dbt.Config.trace_threshold = 0 }
    end)

module Interp_sba = Sb_interp.Interp.Make (Sb_arch_sba.Arch)

let run_program engine program =
  let machine = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
  Sb_sim.Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine ~max_insns:2_000_000 machine in
  (result, Array.sub machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs 0 14)

(* a counted loop whose body spans three blocks linked by direct branches:
   the canonical trace-formation shape *)
let trace_loop_program iters =
  let module SI = Sb_arch_sba.Insn in
  let open Sb_asm.Assembler in
  let insns l = List.map (fun i -> Insn i) l in
  SI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ insns (SI.li 1 0 @ SI.li 2 iters)
    @ [ Label "loop" ]
    @ insns [ SI.Add (1, 1, SI.Imm 3); SI.B "b2" ]
    @ [ Label "b2" ]
    @ insns [ SI.Add (1, 1, SI.Imm 5); SI.B "b3" ]
    @ [ Label "b3" ]
    @ insns
        [
          SI.Sub (2, 2, SI.Imm 1);
          SI.Cmp (2, SI.Imm 0);
          SI.Bcc (Sb_isa.Uop.Ne, "loop");
          SI.Halt;
        ])

let counter (r : Sb_sim.Run_result.t) c = Sb_sim.Perf.get r.Sb_sim.Run_result.perf c

let test_trace_equivalence_and_counters () =
  let program = trace_loop_program 200 in
  let rt, regs_t = run_program (module Dbt_traces) program in
  let rn, regs_n = run_program (module Dbt_notrace) program in
  let ri, regs_i = run_program (module Interp_sba) program in
  Alcotest.(check (array int)) "traces vs no traces" regs_n regs_t;
  Alcotest.(check (array int)) "traces vs interpreter" regs_i regs_t;
  Alcotest.(check int) "insns identical (dbt)" (counter rn Sb_sim.Perf.Insns)
    (counter rt Sb_sim.Perf.Insns);
  Alcotest.(check int) "insns identical (interp)" (counter ri Sb_sim.Perf.Insns)
    (counter rt Sb_sim.Perf.Insns);
  (* architectural branch counters survive seam elision *)
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Sb_sim.Perf.to_string c)
        (counter rn c) (counter rt c))
    [ Sb_sim.Perf.Branch_direct; Sb_sim.Perf.Branch_taken; Sb_sim.Perf.Branch_indirect ];
  (* the trace machinery actually engaged *)
  Alcotest.(check bool) "traces formed" true (counter rt Sb_sim.Perf.Traces_formed >= 1);
  Alcotest.(check bool) "trace dispatches dominate" true
    (counter rt Sb_sim.Perf.Trace_dispatches > 100);
  (* the loop exit leaves through a conditional seam *)
  Alcotest.(check bool) "side exit at loop exit" true
    (counter rt Sb_sim.Perf.Trace_side_exits >= 1);
  (* and stayed entirely off with threshold 0 *)
  List.iter
    (fun c -> Alcotest.(check int) ("off: " ^ Sb_sim.Perf.to_string c) 0 (counter rn c))
    [
      Sb_sim.Perf.Traces_formed;
      Sb_sim.Perf.Trace_dispatches;
      Sb_sim.Perf.Trace_side_exits;
      Sb_sim.Perf.Trace_invalidations;
    ]

(* Self-modifying code must invalidate live traces: mid-loop, the guest
   stores over an instruction of a constituent block (rewriting the same
   word, so the architectural result is unchanged and any stale-trace reuse
   would be invisible to the registers — only the invalidation contract
   makes this pass deterministically). *)
let test_trace_smc_invalidation () =
  let module SI = Sb_arch_sba.Insn in
  let open Sb_asm.Assembler in
  let insns l = List.map (fun i -> Insn i) l in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ insns (SI.li 1 0 @ SI.li 2 50 @ SI.la 4 "patch_target")
      @ insns [ SI.Ldr (5, 4, 0) ]
      @ [ Label "loop" ]
      @ insns [ SI.Add (1, 1, SI.Imm 3); SI.B "b2" ]
      @ [ Label "b2"; Label "patch_target" ]
      @ insns [ SI.Add (1, 1, SI.Imm 5); SI.B "b3" ]
      @ [ Label "b3" ]
      @ insns [ SI.Cmp (2, SI.Imm 10); SI.Bcc (Sb_isa.Uop.Ne, "skip") ]
      @ insns [ SI.Str (5, 4, 0) ]
      @ [ Label "skip" ]
      @ insns
          [
            SI.Sub (2, 2, SI.Imm 1);
            SI.Cmp (2, SI.Imm 0);
            SI.Bcc (Sb_isa.Uop.Ne, "loop");
            SI.Halt;
          ])
  in
  let rt, regs_t = run_program (module Dbt_traces) program in
  let rn, regs_n = run_program (module Dbt_notrace) program in
  let ri, regs_i = run_program (module Interp_sba) program in
  Alcotest.(check (array int)) "traces vs no traces" regs_n regs_t;
  Alcotest.(check (array int)) "traces vs interpreter" regs_i regs_t;
  Alcotest.(check int) "insns identical" (counter rn Sb_sim.Perf.Insns)
    (counter rt Sb_sim.Perf.Insns);
  Alcotest.(check int) "insns identical (interp)" (counter ri Sb_sim.Perf.Insns)
    (counter rt Sb_sim.Perf.Insns);
  Alcotest.(check bool) "SMC invalidated a trace" true
    (counter rt Sb_sim.Perf.Trace_invalidations >= 1);
  Alcotest.(check bool) "and traces re-formed after" true
    (counter rt Sb_sim.Perf.Traces_formed >= 2)

let () =
  Alcotest.run "sb_dbt"
    [
      ( "ir",
        [
          Alcotest.test_case "const prop folds" `Quick test_const_prop_folds_movw_movt;
          Alcotest.test_case "const prop kill" `Quick test_const_prop_kills_on_load;
          Alcotest.test_case "flags not folded" `Quick test_const_prop_no_fold_when_flags;
          Alcotest.test_case "link constant" `Quick test_const_prop_link_register_known;
          Alcotest.test_case "nop elim" `Quick test_nop_elim_keeps_slot;
          Alcotest.test_case "peephole" `Quick test_peephole_identities;
          Alcotest.test_case "pass clamp" `Quick test_run_clamps_passes;
          Alcotest.test_case "opt equivalence" `Quick test_opt_equivalence;
          QCheck_alcotest.to_alcotest prop_optimizer_preserves_semantics;
        ] );
      ( "page_cache",
        [
          Alcotest.test_case "l1" `Quick test_page_cache_l1;
          Alcotest.test_case "l2 promotion" `Quick test_page_cache_l2_promotion;
          Alcotest.test_case "flush modes" `Quick test_page_cache_flush_modes;
          Alcotest.test_case "flush cost" `Quick test_page_cache_flush_cost_reporting;
          Alcotest.test_case "lazy generations" `Quick test_page_cache_lazy_generations;
          Alcotest.test_case "l2 disabled" `Quick test_page_cache_l2_disabled;
          Alcotest.test_case "invalidate page" `Quick test_page_cache_invalidate_page;
          Alcotest.test_case "asid tagging" `Quick test_page_cache_asid_tagging;
        ] );
      ( "versions", [ Alcotest.test_case "table" `Quick test_version_table ] );
      ( "traces",
        [
          Alcotest.test_case "equivalence and counters" `Quick
            test_trace_equivalence_and_counters;
          Alcotest.test_case "smc invalidation" `Quick test_trace_smc_invalidation;
        ] );
    ]
