(* Cross-engine behavioural tests.

   Engines under test are instantiated here for both guest ISAs.  Every test
   runs on every engine: the engine list grows as engines are added, and the
   final section checks cross-engine equivalence on randomised programs. *)

module Uop = Sb_isa.Uop
module SI = Sb_arch_sba.Insn
module VI = Sb_arch_vlx.Insn
module Machine = Sb_sim.Machine
module Map = Sb_sim.Machine.Map

module Interp_sba = Sb_interp.Interp.Make (Sb_arch_sba.Arch)
module Interp_vlx = Sb_interp.Interp.Make (Sb_arch_vlx.Arch)
module Dbt_sba = Sb_dbt.Dbt.Make (Sb_arch_sba.Arch)
module Dbt_vlx = Sb_dbt.Dbt.Make (Sb_arch_vlx.Arch)

module Dbt_sba_baseline =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config = Sb_dbt.Config.baseline
    end)

(* Aggressive hot-trace formation: threshold 2 means any loop that runs a
   handful of iterations executes through stitched superblocks, so every
   equivalence/SMC property below also pins trace semantics. *)
module Dbt_sba_traces =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config = { Sb_dbt.Config.default with Sb_dbt.Config.trace_threshold = 2 }
    end)

(* The closure emission backend the threaded opstream replaced: keeping it
   in every behavioural test pins threaded-vs-closure equivalence on real
   guest programs, not just the symbolic validator. *)
module Dbt_sba_closure =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_sba.Arch)
    (struct
      let config = { Sb_dbt.Config.default with Sb_dbt.Config.threaded = false }
    end)

module Dbt_vlx_closure =
  Sb_dbt.Dbt.Make_configured
    (Sb_arch_vlx.Arch)
    (struct
      let config = { Sb_dbt.Config.default with Sb_dbt.Config.threaded = false }
    end)

module Detailed_sba = Sb_detailed.Detailed.Make (Sb_arch_sba.Arch)
module Detailed_vlx = Sb_detailed.Detailed.Make (Sb_arch_vlx.Arch)
module Virt_sba = Sb_virt.Virt.Make_virt (Sb_arch_sba.Arch)
module Virt_vlx = Sb_virt.Virt.Make_virt (Sb_arch_vlx.Arch)
module Native_sba = Sb_virt.Virt.Make_native (Sb_arch_sba.Arch)
module Native_vlx = Sb_virt.Virt.Make_native (Sb_arch_vlx.Arch)

let sba_engines : Sb_sim.Engine.t list =
  [
    (module Interp_sba);
    (module Dbt_sba);
    (module Dbt_sba_baseline);
    (module Dbt_sba_traces);
    (module Dbt_sba_closure);
    (module Detailed_sba);
    (module Virt_sba);
    (module Native_sba);
  ]

let vlx_engines : Sb_sim.Engine.t list =
  [
    (module Interp_vlx);
    (module Dbt_vlx);
    (module Dbt_vlx_closure);
    (module Detailed_vlx);
    (module Virt_vlx);
    (module Native_vlx);
  ]

let run_program ~(engine : Sb_sim.Engine.t) program =
  let machine = Machine.create ~ram_size:(4 * 1024 * 1024) () in
  Machine.load_program machine program;
  let result = Sb_sim.Engine.run engine ~max_insns:10_000_000 machine in
  (machine, result)

let check_halted result =
  Alcotest.(check bool)
    (Printf.sprintf "%s halted" result.Sb_sim.Run_result.engine)
    true
    (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted)

(* ------------------------------------------------------------------ *)
(* SBA guest programs                                                   *)
(* ------------------------------------------------------------------ *)

open Sb_asm.Assembler

let sba_insns insns = List.map (fun i -> Insn i) insns

(* Standard vector table: each 8-byte slot branches to a named handler. *)
let sba_vectors ~reset ~undef ~svc ~pabt ~dabt ~irq =
  let slot target = [ Insn (SI.B target); Insn SI.Nop ] in
  (Label "vectors" :: slot reset)
  @ slot undef @ slot svc @ slot pabt @ slot dabt @ slot irq

let sba_set_vbar =
  sba_insns (SI.la 0 "vectors" @ [ SI.Mcr (Sb_isa.Cregs.vbar, 0) ])



let test_sba_uart_hello () =
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ sba_insns
          (SI.li 1 Map.uart_base
          @ [
              SI.Movw (0, Char.code 'H');
              SI.Str (0, 1, 0);
              SI.Movw (0, Char.code 'i');
              SI.Str (0, 1, 0);
              SI.Halt;
            ]))
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check string) "uart" "Hi" (Sb_mem.Uart.contents machine.Machine.uart))
    sba_engines

let test_sba_loop_sum () =
  (* sum 1..100 into r3, store at 0x20000 *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ sba_insns
          ([ SI.Movw (2, 100); SI.Movw (3, 0) ]
          @ [ ])
      @ [ Label "loop" ]
      @ sba_insns
          [
            SI.Add (3, 3, SI.Rm 2);
            SI.Sub (2, 2, SI.Imm 1);
            SI.Cmp (2, SI.Imm 0);
            SI.Bcc (Uop.Ne, "loop");
          ]
      @ sba_insns (SI.li 1 0x20000 @ [ SI.Str (3, 1, 0); SI.Halt ]))
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      let v = Sb_mem.Phys_mem.read32 (Sb_mem.Bus.ram machine.Machine.bus) 0x20000 in
      Alcotest.(check int) "sum" 5050 v)
    sba_engines

let test_sba_svc_and_undef () =
  (* SVC handler increments r10 and returns; UNDEF handler skips the insn
     (ELR += 4) and increments r11. *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ] @ sba_set_vbar
      @ sba_insns
          [
            SI.Movw (10, 0);
            SI.Movw (11, 0);
            SI.Svc 1;
            SI.Udf;
            SI.Svc 2;
            SI.Halt;
          ]
      @ [ Label "svc_handler" ]
      @ sba_insns [ SI.Add (10, 10, SI.Imm 1); SI.Eret ]
      @ [ Label "undef_handler" ]
      @ sba_insns
          [
            SI.Add (11, 11, SI.Imm 1);
            SI.Mrc (0, Sb_isa.Cregs.elr);
            SI.Add (0, 0, SI.Imm 4);
            SI.Mcr (Sb_isa.Cregs.elr, 0);
            SI.Eret;
          ]
      @ sba_vectors ~reset:"start" ~undef:"undef_handler" ~svc:"svc_handler"
          ~pabt:"start" ~dabt:"start" ~irq:"start")
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check int) "svc count" 2 machine.Machine.cpu.Sb_sim.Cpu.regs.(10);
      Alcotest.(check int) "undef count" 1 machine.Machine.cpu.Sb_sim.Cpu.regs.(11);
      Alcotest.(check int) "svcs" 2
        (Sb_sim.Perf.get result.Sb_sim.Run_result.perf Sb_sim.Perf.Svc_taken);
      Alcotest.(check int) "undefs" 1
        (Sb_sim.Perf.get result.Sb_sim.Run_result.perf Sb_sim.Perf.Undef_insn))
    sba_engines

let test_sba_data_abort_mmu () =
  (* Host installs an identity section mapping for RAM and the device space,
     leaves 0x0080_0000 unmapped.  The guest enables the MMU, reads the
     unmapped address, and the data-abort handler stores a marker. *)
  let ttbr = 0x0010_0000 in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ] @ sba_set_vbar
      @ sba_insns
          (SI.li 0 ttbr
          @ [ SI.Mcr (Sb_isa.Cregs.ttbr, 0) ]
          @ [ SI.Movw (0, 1); SI.Mcr (Sb_isa.Cregs.sctlr, 0) ]
          @ SI.li 1 0x0080_0000
          @ [ SI.Ldr (2, 1, 0) ] (* faults *)
          @ [ SI.Halt ])
      @ [ Label "dabt_handler" ]
      @ sba_insns
          (SI.li 3 0x30000
          @ [
              SI.Movw (4, 0xD00D);
              SI.Str (4, 3, 0);
              SI.Mrc (5, Sb_isa.Cregs.far);  (* capture FAR *)
              SI.Str (5, 3, 4);
              SI.Mrc (0, Sb_isa.Cregs.elr);
              SI.Add (0, 0, SI.Imm 4);
              SI.Mcr (Sb_isa.Cregs.elr, 0);
              SI.Eret;
            ])
      @ sba_vectors ~reset:"start" ~undef:"start" ~svc:"start" ~pabt:"start"
          ~dabt:"dabt_handler" ~irq:"start")
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(4 * 1024 * 1024) () in
      Machine.load_program machine program;
      (* identity-map the first 4 MiB (RAM) as a section, kernel RW+X *)
      let ram = Sb_mem.Bus.ram machine.Machine.bus in
      Sb_mem.Phys_mem.write32 ram
        (ttbr + (Sb_mmu.Pte.l1_index 0 * 4))
        (Sb_mmu.Pte.encode_section ~pa_base:0 ~ap:Sb_mmu.Access.Ap.kernel_only ~xn:false);
      let result = Sb_sim.Engine.run engine ~max_insns:1_000_000 machine in
      check_halted result;
      Alcotest.(check int) "marker" 0xD00D (Sb_mem.Phys_mem.read32 ram 0x30000);
      Alcotest.(check int) "far" 0x0080_0000 (Sb_mem.Phys_mem.read32 ram 0x30004);
      Alcotest.(check int) "one data abort" 1
        (Sb_sim.Perf.get result.Sb_sim.Run_result.perf Sb_sim.Perf.Data_abort))
    sba_engines

let test_sba_tlbi_remap () =
  (* Micro-TLB shootdown: with the MMU on, the guest reads a page-mapped
     address twice (the second read is served from the DBT's flat-memory
     fast path), rewrites the L2 entry to point the same VA at a different
     physical page, executes TLBI for that VA, and reads again.  A stale
     micro-TLB entry surviving the invalidation would return the old
     page's value on the third read. *)
  let ttbr = 0x0010_0000 in
  let l2_base = 0x0011_0000 in
  let va = 0x0040_0000 in
  let page_a = 0x0005_0000 and page_b = 0x0005_1000 in
  let pte_b =
    Sb_mmu.Pte.encode_page ~pa_base:page_b ~ap:Sb_mmu.Access.Ap.kernel_only
      ~xn:true
  in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ sba_insns
          (SI.li 0 ttbr
          @ [ SI.Mcr (Sb_isa.Cregs.ttbr, 0) ]
          @ [ SI.Movw (0, 1); SI.Mcr (Sb_isa.Cregs.sctlr, 0) ]
          @ SI.li 5 va
          @ [ SI.Ldr (2, 5, 0) ] (* page A, slow walk fills the fast path *)
          @ [ SI.Ldr (6, 5, 0) ] (* page A again, fast-path hit *)
          (* remap the VA to page B by rewriting the (identity-mapped) L2
             entry, then shoot down the page *)
          @ SI.li 0 (l2_base + (Sb_mmu.Pte.l2_index va * 4))
          @ SI.li 1 pte_b
          @ [ SI.Str (1, 0, 0) ]
          @ [ SI.Tlbi 5 ]
          @ [ SI.Ldr (3, 5, 0) ] (* must observe page B *)
          @ SI.li 7 0x30000
          @ [ SI.Str (2, 7, 0); SI.Str (6, 7, 4); SI.Str (3, 7, 8); SI.Halt ]))
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(4 * 1024 * 1024) () in
      Machine.load_program machine program;
      let ram = Sb_mem.Bus.ram machine.Machine.bus in
      (* identity-map the first 1 MiB (code, scratch, the two physical
         pages), table-map the test VA to page A *)
      Sb_mem.Phys_mem.write32 ram
        (ttbr + (Sb_mmu.Pte.l1_index 0 * 4))
        (Sb_mmu.Pte.encode_section ~pa_base:0 ~ap:Sb_mmu.Access.Ap.kernel_only
           ~xn:false);
      Sb_mem.Phys_mem.write32 ram
        (ttbr + (Sb_mmu.Pte.l1_index va * 4))
        (Sb_mmu.Pte.encode_table ~l2_base);
      Sb_mem.Phys_mem.write32 ram
        (l2_base + (Sb_mmu.Pte.l2_index va * 4))
        (Sb_mmu.Pte.encode_page ~pa_base:page_a
           ~ap:Sb_mmu.Access.Ap.kernel_only ~xn:true);
      Sb_mem.Phys_mem.write32 ram page_a 0x1111;
      Sb_mem.Phys_mem.write32 ram page_b 0x2222;
      let result = Sb_sim.Engine.run engine ~max_insns:1_000_000 machine in
      check_halted result;
      let name = result.Sb_sim.Run_result.engine in
      Alcotest.(check int) (name ^ " first read, page A") 0x1111
        (Sb_mem.Phys_mem.read32 ram 0x30000);
      Alcotest.(check int) (name ^ " cached read, page A") 0x1111
        (Sb_mem.Phys_mem.read32 ram 0x30004);
      Alcotest.(check int) (name ^ " read after remap+tlbi, page B") 0x2222
        (Sb_mem.Phys_mem.read32 ram 0x30008))
    sba_engines

let test_sba_self_modifying_code () =
  (* The guest overwrites a MOVW instruction ahead of execution: engines with
     decode/translation caches must see the new encoding.  The target insn
     initially sets r5 := 1; the guest rewrites it to set r5 := 2 before
     executing it a second time. *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ sba_insns [ SI.Movw (7, 0) ] (* pass counter *)
      @ [ Label "again" ]
      @ [ Label "patch_site" ]
      @ sba_insns [ SI.Movw (5, 1) ]
      @ sba_insns
          [
            (* first pass: rewrite patch_site to movw r5, 2 and loop *)
            SI.Cmp (7, SI.Imm 0);
            SI.Bcc (Uop.Ne, "done");
            SI.Movw (7, 1);
          ]
      @ sba_insns SI.(la 0 "patch_site")
      @ sba_insns
          (let patched =
             SI.encode_word
               ~resolve:(fun _ -> assert false)
               ~pc:0 (SI.Movw (5, 2))
           in
           SI.li 1 patched @ [ SI.Str (1, 0, 0); SI.B "again" ])
      @ [ Label "done" ]
      @ sba_insns [ SI.Halt ])
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check int) "patched value seen" 2
        machine.Machine.cpu.Sb_sim.Cpu.regs.(5))
    sba_engines

let test_sba_software_interrupt () =
  (* Enable the softint line, trigger it via the INTC, and expect the IRQ
     handler to run (it acks the line and sets r9). *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ] @ sba_set_vbar
      @ sba_insns
          (SI.li 1 Map.intc_base
          @ [
              SI.Movw (0, 1);
              SI.Str (0, 1, 4);     (* ENABLE = 1 *)
              SI.Movw (9, 0);
              (* unmask IRQs: write SPSR-style bits via cop? IRQs are enabled
                 through ERET; here we use the convention that the reset
                 state has them masked, so enable via a small trampoline. *)
              SI.Movw (0, 3);       (* kernel mode + irq enable *)
              SI.Mcr (Sb_isa.Cregs.spsr, 0);
            ]
          @ SI.la 0 "with_irqs"
          @ [ SI.Mcr (Sb_isa.Cregs.elr, 0); SI.Eret ])
      @ [ Label "with_irqs" ]
      @ sba_insns
          (SI.li 1 Map.intc_base
          @ [ SI.Movw (0, 1); SI.Str (0, 1, 8) (* SOFTINT_SET: raise the line *) ])
      (* spin until the handler runs: block-boundary engines (DBT) only
         deliver IRQs between blocks, so bare-metal code must not fall
         straight into HALT *)
      @ [ Label "wait" ]
      @ sba_insns
          [
            SI.Cmp (9, SI.Imm 0x77);
            SI.Bcc (Uop.Ne, "wait");
            SI.Halt;
          ]
      @ [ Label "irq_handler" ]
      @ sba_insns
          (SI.li 1 Map.intc_base
          @ [
              SI.Movw (0, 1);
              SI.Str (0, 1, 0xC);   (* ACK *)
              SI.Movw (9, 0x77);
              SI.Eret;
            ])
      @ sba_vectors ~reset:"start" ~undef:"start" ~svc:"start" ~pabt:"start"
          ~dabt:"start" ~irq:"irq_handler")
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check int) "handler ran" 0x77 machine.Machine.cpu.Sb_sim.Cpu.regs.(9);
      Alcotest.(check int) "irq taken" 1
        (Sb_sim.Perf.get result.Sb_sim.Run_result.perf Sb_sim.Perf.Irq_taken))
    sba_engines

(* ------------------------------------------------------------------ *)
(* VLX guest programs                                                   *)
(* ------------------------------------------------------------------ *)

let vlx_insns insns = List.map (fun i -> Insn i) insns

let test_vlx_uart_hello () =
  let program =
    VI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ vlx_insns
          [
            VI.Movi (1, Map.uart_base);
            VI.Movi (0, Char.code 'V');
            VI.Store (0, 1, 0);
            VI.Movi (0, Char.code 'x');
            VI.Store (0, 1, 0);
            VI.Halt;
          ])
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check string) "uart" "Vx" (Sb_mem.Uart.contents machine.Machine.uart))
    vlx_engines

let test_vlx_loop_and_call () =
  (* call a function that doubles r0, in a loop *)
  let program =
    VI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ vlx_insns [ VI.Movi (0, 1); VI.Movi (2, 5) ]
      @ [ Label "loop" ]
      @ vlx_insns
          [
            VI.Call "double";
            VI.Alu_ri (Uop.Sub, 2, 2, 1);
            VI.Cmp_ri (2, 0);
            VI.Jcc (Uop.Ne, "loop");
            VI.Movi (1, 0x20000);
            VI.Store (0, 1, 0);
            VI.Halt;
          ]
      @ [ Label "double" ]
      @ vlx_insns [ VI.Alu_rr (Uop.Add, 0, 0, 0); VI.Jmp_r VI.lr ])
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      let v = Sb_mem.Phys_mem.read32 (Sb_mem.Bus.ram machine.Machine.bus) 0x20000 in
      Alcotest.(check int) "2^5" 32 v)
    vlx_engines

let test_vlx_ud2_skip () =
  (* UD2 handler must be able to skip exactly two bytes. *)
  let slot target = [ Insn (VI.Jmp target); Insn VI.Nop; Insn VI.Nop; Insn VI.Nop ] in
  let vectors =
    (* vector slots are 8 bytes apart; Jmp is 5 bytes + 3 nops = 8 *)
    (Label "vectors" :: slot "start")
    @ slot "undef_handler" @ slot "start" @ slot "start" @ slot "start" @ slot "start"
  in
  let program =
    VI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ vlx_insns
          [
            VI.Movi_sym (0, "vectors");
            VI.Cpw (Sb_isa.Cregs.vbar, 0);
            VI.Movi (3, 0);
            VI.Ud2;
            VI.Alu_ri (Uop.Add, 3, 3, 100);
            VI.Halt;
          ]
      @ [ Label "undef_handler" ]
      @ vlx_insns
          [
            VI.Alu_ri (Uop.Add, 3, 3, 1);
            VI.Cpr (0, Sb_isa.Cregs.elr);
            VI.Alu_ri (Uop.Add, 0, 0, 2);
            VI.Cpw (Sb_isa.Cregs.elr, 0);
            VI.Eret;
          ]
      @ vectors)
  in
  List.iter
    (fun engine ->
      let machine, result = run_program ~engine program in
      check_halted result;
      Alcotest.(check int) "handler + fallthrough" 101
        machine.Machine.cpu.Sb_sim.Cpu.regs.(3))
    vlx_engines


(* ------------------------------------------------------------------ *)
(* Cross-engine equivalence on randomised programs                     *)
(* ------------------------------------------------------------------ *)

(* Architectural outcome of a run: everything engines must agree on. *)
type outcome = {
  regs : int list;
  flags : bool * bool * bool * bool;
  scratch : string;
  arch_counters : (string * int) list;
  stop_halted : bool;
}

let outcome_of machine result nregs =
  let cpu = machine.Machine.cpu in
  let ram = Sb_mem.Bus.ram machine.Machine.bus in
  let perf = result.Sb_sim.Run_result.perf in
  {
    regs = Array.to_list (Array.sub cpu.Sb_sim.Cpu.regs 0 nregs);
    flags =
      ( cpu.Sb_sim.Cpu.flag_n,
        cpu.Sb_sim.Cpu.flag_z,
        cpu.Sb_sim.Cpu.flag_c,
        cpu.Sb_sim.Cpu.flag_v );
    scratch =
      Bytes.to_string (Sb_mem.Phys_mem.blit_out ram ~addr:0x40000 ~len:2048);
    arch_counters =
      List.map
        (fun c -> (Sb_sim.Perf.to_string c, Sb_sim.Perf.get perf c))
        [
          Sb_sim.Perf.Insns;
          Sb_sim.Perf.Loads;
          Sb_sim.Perf.Stores;
          Sb_sim.Perf.Branch_direct;
          Sb_sim.Perf.Branch_indirect;
          Sb_sim.Perf.Branch_taken;
          Sb_sim.Perf.Svc_taken;
          Sb_sim.Perf.Undef_insn;
          Sb_sim.Perf.Data_abort;
          Sb_sim.Perf.Exceptions_total;
        ];
    stop_halted = result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted;
  }

(* Random-but-always-terminating SBA program from a seed. *)
let random_sba_program seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let n_chunks = 20 + Sb_util.Xorshift.int rng 60 in
  let body = ref [] in
  let add items = body := !body @ items in
  let alu_ops =
    [|
      (fun a b c -> SI.Add (a, b, SI.Rm c));
      (fun a b c -> SI.Sub (a, b, SI.Rm c));
      (fun a b c -> SI.And_ (a, b, c));
      (fun a b c -> SI.Orr (a, b, c));
      (fun a b c -> SI.Xor (a, b, c));
      (fun a b c -> SI.Mul (a, b, c));
      (fun a b c -> SI.Lsl (a, b, SI.Rm c));
      (fun a b c -> SI.Lsr (a, b, SI.Rm c));
    |]
  in
  let conds = [| Uop.Eq; Uop.Ne; Uop.Lt; Uop.Ge; Uop.Ltu; Uop.Geu |] in
  let reg () = Sb_util.Xorshift.int rng 10 in
  for i = 0 to n_chunks - 1 do
    match Sb_util.Xorshift.int rng 11 with
    | 0 | 1 | 2 | 3 ->
      let f = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      add (sba_insns [ f (reg ()) (reg ()) (reg ()) ])
    | 4 ->
      add (sba_insns [ SI.Add (reg (), reg (), SI.Imm (Sb_util.Xorshift.int rng 4096 - 2048)) ])
    | 5 ->
      (* guarded short skip *)
      let skip = Printf.sprintf "skip%d" i in
      let cond = conds.(Sb_util.Xorshift.int rng (Array.length conds)) in
      add
        (sba_insns [ SI.Cmp (reg (), SI.Rm (reg ())); SI.Bcc (cond, skip) ]
        @ sba_insns [ SI.Xor (reg (), reg (), reg ()) ]
        @ [ Label skip ])
    | 6 ->
      let off = Sb_util.Xorshift.int rng 500 * 4 in
      add (sba_insns [ SI.Str (reg (), 12, off) ])
    | 7 ->
      let off = Sb_util.Xorshift.int rng 500 * 4 in
      add (sba_insns [ SI.Ldr (reg (), 12, off) ])
    | 8 -> add (sba_insns [ SI.Svc (i land 0xFF) ])
    | 9 ->
      let off = Sb_util.Xorshift.int rng 500 * 4 in
      add (sba_insns [ SI.Strb (reg (), 12, off + (i land 3)) ])
    | _ ->
      (* bounded two-block loop with a fixed trip count: hot enough for the
         trace-enabled DBT to stitch a superblock and run it repeatedly *)
      let top = Printf.sprintf "top%d" i in
      let mid = Printf.sprintf "mid%d" i in
      let f = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      let g = alu_ops.(Sb_util.Xorshift.int rng (Array.length alu_ops)) in
      let iters = 6 + Sb_util.Xorshift.int rng 10 in
      add
        (sba_insns [ SI.Movw (13, iters) ]
        @ [ Label top ]
        @ sba_insns [ f (reg ()) (reg ()) (reg ()); SI.B mid ]
        @ [ Label mid ]
        @ sba_insns
            [
              g (reg ()) (reg ()) (reg ());
              SI.Sub (13, 13, SI.Imm 1);
              SI.Cmp (13, SI.Imm 0);
              SI.Bcc (Uop.Ne, top);
            ])
  done;
  let init =
    List.concat
      (List.map (fun r -> SI.li r (Sb_util.Xorshift.u32 rng)) [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])
  in
  SI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ] @ sba_set_vbar
    @ sba_insns init
    @ sba_insns (SI.li 12 0x40000)
    @ !body
    @ sba_insns [ SI.Halt ]
    @ [ Label "svc_handler" ]
    @ sba_insns [ SI.Add (11, 11, SI.Imm 1); SI.Eret ]
    @ sba_vectors ~reset:"start" ~undef:"svc_handler" ~svc:"svc_handler"
        ~pabt:"start" ~dabt:"start" ~irq:"start")

let prop_cross_engine_equivalence =
  QCheck.Test.make ~name:"all engines agree on random programs" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let program = random_sba_program (seed + 1) in
      let outcomes =
        List.map
          (fun engine ->
            let machine, result = run_program ~engine program in
            (Sb_sim.Engine.name engine, outcome_of machine result 14))
          sba_engines
      in
      match outcomes with
      | [] -> true
      | (_, reference) :: rest ->
        List.for_all
          (fun (engine_name, o) ->
            if o = reference then true
            else
              QCheck.Test.fail_reportf "engine %s diverges on seed %d" engine_name seed)
          rest)

(* Random VLX programs: exercises the variable-length decoders the same way. *)
let random_vlx_program seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let n = 20 + Sb_util.Xorshift.int rng 60 in
  let body = ref [] in
  let add items = body := !body @ items in
  let reg () = Sb_util.Xorshift.int rng 4 in
  let ops = [| Uop.Add; Uop.Sub; Uop.And_; Uop.Orr; Uop.Xor; Uop.Mul; Uop.Lsl; Uop.Lsr |] in
  for i = 0 to n - 1 do
    match Sb_util.Xorshift.int rng 8 with
    | 0 | 1 | 2 ->
      let op = ops.(Sb_util.Xorshift.int rng (Array.length ops)) in
      add (vlx_insns [ VI.Alu_rr (op, reg (), reg (), reg ()) ])
    | 3 ->
      let op = ops.(Sb_util.Xorshift.int rng (Array.length ops)) in
      add (vlx_insns [ VI.Alu_ri (op, reg (), reg (), Sb_util.Xorshift.int rng 100000) ])
    | 4 ->
      let skip = Printf.sprintf "vskip%d" i in
      add
        (vlx_insns [ VI.Cmp_rr (reg (), reg ()); VI.Jcc (Uop.Ne, skip) ]
        @ vlx_insns [ VI.Alu_ri (Uop.Xor, reg (), reg (), 0xFF) ]
        @ [ Label skip ])
    | 5 -> add (vlx_insns [ VI.Store (reg (), 4, Sb_util.Xorshift.int rng 500 * 4) ])
    | 6 -> add (vlx_insns [ VI.Load (reg (), 4, Sb_util.Xorshift.int rng 500 * 4) ])
    | _ -> add (vlx_insns [ VI.Svc (i land 0xFF) ])
  done;
  let vec_slot target = [ Insn (VI.Jmp target); Insn VI.Nop; Insn VI.Nop; Insn VI.Nop ] in
  VI.Asm.assemble ~base:0 ~entry:"start"
    ([ Label "start" ]
    @ vlx_insns [ VI.Movi_sym (0, "vectors"); VI.Cpw (Sb_isa.Cregs.vbar, 0) ]
    @ vlx_insns
        (List.concat
           (List.map (fun r -> [ VI.Movi (r, Sb_util.Xorshift.u32 rng) ]) [ 0; 1; 2; 3 ]))
    @ vlx_insns [ VI.Movi (4, 0x40000) ]
    @ !body
    @ vlx_insns [ VI.Halt ]
    @ [ Label "vsvc" ]
    @ vlx_insns [ VI.Alu_ri (Uop.Add, 7, 7, 1); VI.Eret ]
    @ (Label "vectors" :: vec_slot "start")
    @ vec_slot "vsvc" @ vec_slot "vsvc" @ vec_slot "start" @ vec_slot "start"
    @ vec_slot "start")

let prop_cross_engine_equivalence_vlx =
  QCheck.Test.make ~name:"vlx engines agree on random programs" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let program = random_vlx_program (seed + 7) in
      let outcomes =
        List.map
          (fun engine ->
            let machine, result = run_program ~engine program in
            (Sb_sim.Engine.name engine, outcome_of machine result 8))
          vlx_engines
      in
      match outcomes with
      | [] -> true
      | (_, reference) :: rest ->
        List.for_all
          (fun (engine_name, o) ->
            if o = reference then true
            else
              QCheck.Test.fail_reportf "engine %s diverges on seed %d" engine_name seed)
          rest)

let test_insn_limit () =
  (* an infinite loop must stop at the instruction limit on every engine *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      [ Label "start"; Insn (SI.B "start") ]
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(1 lsl 20) () in
      Machine.load_program machine program;
      let result = Sb_sim.Engine.run engine ~max_insns:5_000 machine in
      Alcotest.(check bool)
        (Sb_sim.Engine.name engine ^ " hits limit")
        true
        (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Insn_limit);
      let insns = Sb_sim.Run_result.insns result in
      Alcotest.(check bool)
        (Printf.sprintf "%s executed about the limit (%d)" (Sb_sim.Engine.name engine) insns)
        true
        (insns >= 5_000 && insns < 6_000))
    sba_engines

let test_wfi_deadlock () =
  (* WFI with no interrupt source armed can never wake *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      [ Label "start"; Insn SI.Wfi; Insn SI.Halt ]
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(1 lsl 20) () in
      Machine.load_program machine program;
      let result = Sb_sim.Engine.run engine ~max_insns:100_000 machine in
      Alcotest.(check bool)
        (Sb_sim.Engine.name engine ^ " deadlocks")
        true
        (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Wfi_deadlock))
    sba_engines

let test_wfi_timer_wakeup () =
  (* WFI with an armed timer wakes up and continues *)
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ sba_insns
          (SI.li 1 Map.intc_base
          @ [ SI.Movw (0, 2); SI.Str (0, 1, 4) ]  (* enable timer line *)
          @ SI.li 1 Map.timer_base
          @ [
              SI.Movw (0, 1);
              SI.Str (0, 1, 8);    (* ctrl: irq enable *)
              SI.Movw (0, 2000);
              SI.Str (0, 1, 4);    (* compare: fire in ~2000 retired insns *)
              SI.Wfi;
              SI.Movw (9, 0x5E7);
              SI.Halt;
            ]))
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(1 lsl 20) () in
      Machine.load_program machine program;
      let result = Sb_sim.Engine.run engine ~max_insns:100_000 machine in
      Alcotest.(check bool)
        (Sb_sim.Engine.name engine ^ " woke and halted")
        true
        (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted);
      Alcotest.(check int)
        (Sb_sim.Engine.name engine ^ " resumed after wfi")
        0x5E7 machine.Machine.cpu.Sb_sim.Cpu.regs.(9))
    sba_engines

let test_vlx_page_straddling_insn () =
  (* a 6-byte MOVI that starts 3 bytes before a page boundary: engines must
     fetch across the page, and the DBT must track both physical pages so a
     store into the *second* page invalidates the block *)
  let open Sb_asm.Assembler in
  let program =
    VI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      @ vlx_insns [ VI.Movi (2, 0); VI.Movi (3, 2) ]  (* r3: passes *)
      @ [ Label "again" ]
      @ [ Org 4093 ]  (* Movi is 6 bytes: 4093..4098 straddles the page *)
      @ [ Label "straddle" ]
      @ vlx_insns [ VI.Movi (0, 0x11223344) ]
      @ vlx_insns
          [
            VI.Alu_rr (Uop.Add, 2, 2, 0);
            (* second pass? *)
            VI.Alu_ri (Uop.Sub, 3, 3, 1);
            VI.Cmp_ri (3, 0);
            VI.Jcc (Uop.Eq, "done");
            (* patch the immediate's high byte, which lives on page 2 *)
            VI.Movi (1, 4098);
            VI.Movi (4, 0x55);
            VI.Storeb (4, 1, 0);
            VI.Jmp "again";
          ]
      @ [ Label "done" ]
      @ vlx_insns [ VI.Halt ])
  in
  List.iter
    (fun engine ->
      let machine = Machine.create ~ram_size:(1 lsl 20) () in
      Machine.load_program machine program;
      let result = Sb_sim.Engine.run engine ~max_insns:100_000 machine in
      Alcotest.(check bool)
        (Sb_sim.Engine.name engine ^ " halted")
        true
        (result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted);
      (* pass 1 adds 0x11223344, pass 2 adds the patched 0x55223344 *)
      Alcotest.(check int)
        (Sb_sim.Engine.name engine ^ " saw the patched straddler")
        ((0x11223344 + 0x55223344) land 0xFFFF_FFFF)
        machine.Machine.cpu.Sb_sim.Cpu.regs.(2))
    vlx_engines

(* Randomised self-modifying code: a patch area of NOPs (own page) ending in
   RET; each round the guest overwrites one random slot with a random
   register-setting instruction (encoded host-side and embedded as data),
   then calls the area.  Translation caches must never serve stale code:
   every engine has to agree on the final register sums. *)
let random_smc_program seed =
  let rng = Sb_util.Xorshift.create ~seed in
  let slots = 12 in
  let rounds = 24 in
  let patch_words =
    (* instructions we might patch in: add r<k>, r<k>, #imm *)
    List.init rounds (fun _ ->
        let r = Sb_util.Xorshift.int rng 4 in
        let imm = 1 + Sb_util.Xorshift.int rng 100 in
        SI.encode_word ~resolve:(fun _ -> assert false) ~pc:0 (SI.Add (r, r, SI.Imm imm)))
  in
  let chosen_slots = List.init rounds (fun _ -> Sb_util.Xorshift.int rng slots) in
  let program =
    SI.Asm.assemble ~base:0 ~entry:"start"
      ([ Label "start" ]
      (* r8 = word table base, r9 = slot table base, r7 = round counter *)
      @ sba_insns (SI.la 8 "words" @ SI.la 9 "slots" @ [ SI.Movw (7, rounds) ])
      @ [ Label "round" ]
      @ sba_insns
          ([
             (* load the patch word and its slot index *)
             SI.Ldr (0, 8, 0);
             SI.Ldr (1, 9, 0);
             SI.Add (8, 8, SI.Imm 4);
             SI.Add (9, 9, SI.Imm 4);
             SI.Lsl (1, 1, SI.Imm 2);
           ]
          @ SI.la 10 "area"
          @ [
              SI.Add (1, 1, SI.Rm 10);
              SI.Str (0, 1, 0);
              (* run the freshly patched area *)
              SI.Bl "area";
              SI.Sub (7, 7, SI.Imm 1);
              SI.Cmp (7, SI.Imm 0);
              SI.Bcc (Uop.Ne, "round");
              SI.Halt;
            ])
      @ [ Align 4; Label "words" ]
      @ List.map (fun w -> Word w) patch_words
      @ [ Label "slots" ]
      @ List.map (fun s -> Word s) chosen_slots
      @ [ Align 4096; Label "area" ]
      @ sba_insns (List.init slots (fun _ -> SI.Nop))
      @ sba_insns [ SI.Br 14 ])
  in
  program

let prop_smc_equivalence =
  QCheck.Test.make ~name:"self-modifying code agrees across engines" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let program = random_smc_program (seed + 3) in
      let outcomes =
        List.map
          (fun engine ->
            let machine, result = run_program ~engine program in
            ( Sb_sim.Engine.name engine,
              ( Array.to_list (Array.sub machine.Machine.cpu.Sb_sim.Cpu.regs 0 5),
                result.Sb_sim.Run_result.stop = Sb_sim.Run_result.Halted ) ))
          sba_engines
      in
      match outcomes with
      | [] -> true
      | (_, reference) :: rest ->
        List.for_all
          (fun (engine_name, o) ->
            if o = reference then true
            else QCheck.Test.fail_reportf "engine %s diverges on smc seed %d" engine_name seed)
          rest)

let () =
  Alcotest.run "engines"
    [
      ( "sba",
        [
          Alcotest.test_case "uart hello" `Quick test_sba_uart_hello;
          Alcotest.test_case "loop sum" `Quick test_sba_loop_sum;
          Alcotest.test_case "svc/undef" `Quick test_sba_svc_and_undef;
          Alcotest.test_case "mmu data abort" `Quick test_sba_data_abort_mmu;
          Alcotest.test_case "tlbi remap shootdown" `Quick test_sba_tlbi_remap;
          Alcotest.test_case "self-modifying code" `Quick test_sba_self_modifying_code;
          Alcotest.test_case "software interrupt" `Quick test_sba_software_interrupt;
        ] );
      ( "vlx",
        [
          Alcotest.test_case "uart hello" `Quick test_vlx_uart_hello;
          Alcotest.test_case "loop and call" `Quick test_vlx_loop_and_call;
          Alcotest.test_case "ud2 skip" `Quick test_vlx_ud2_skip;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "insn limit" `Quick test_insn_limit;
          Alcotest.test_case "wfi deadlock" `Quick test_wfi_deadlock;
          Alcotest.test_case "wfi timer wakeup" `Quick test_wfi_timer_wakeup;
          Alcotest.test_case "vlx page-straddling insn" `Quick
            test_vlx_page_straddling_insn;
        ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cross_engine_equivalence;
            prop_cross_engine_equivalence_vlx;
            prop_smc_equivalence;
          ] );
    ]
