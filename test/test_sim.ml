(* Unit tests for the sim-core library: CPU state, PSR packing, the
   exception model, coprocessor semantics, ALU evaluation and perf
   counters. *)

module Cpu = Sb_sim.Cpu
module Exn = Sb_sim.Exn
module Cop = Sb_sim.Cop
module Perf = Sb_sim.Perf
module Alu = Sb_sim.Alu_eval
module Uop = Sb_isa.Uop
module Cregs = Sb_isa.Cregs

let test_cpu_reset () =
  let cpu = Cpu.create () in
  Alcotest.(check bool) "kernel mode" true (cpu.Cpu.mode = Sb_mmu.Access.Kernel);
  Alcotest.(check bool) "irqs masked" false cpu.Cpu.irq_enabled;
  Alcotest.(check bool) "cpuid nonzero" true (cpu.Cpu.cop.(Cregs.cpuid) <> 0);
  cpu.Cpu.regs.(3) <- 42;
  cpu.Cpu.pc <- 0x100;
  Cpu.reset cpu;
  Alcotest.(check int) "regs cleared" 0 cpu.Cpu.regs.(3);
  Alcotest.(check int) "pc cleared" 0 cpu.Cpu.pc

let test_psr_roundtrip () =
  let cpu = Cpu.create () in
  cpu.Cpu.mode <- Sb_mmu.Access.User;
  cpu.Cpu.irq_enabled <- true;
  cpu.Cpu.flag_n <- true;
  cpu.Cpu.flag_c <- true;
  let packed = Cpu.psr_encode cpu in
  let other = Cpu.create () in
  Cpu.psr_restore other packed;
  Alcotest.(check bool) "mode" true (other.Cpu.mode = Sb_mmu.Access.User);
  Alcotest.(check bool) "irq" true other.Cpu.irq_enabled;
  Alcotest.(check bool) "n" true other.Cpu.flag_n;
  Alcotest.(check bool) "z" false other.Cpu.flag_z;
  Alcotest.(check bool) "c" true other.Cpu.flag_c;
  Alcotest.(check bool) "v" false other.Cpu.flag_v

let test_mmu_enable_bit () =
  let cpu = Cpu.create () in
  Alcotest.(check bool) "off at reset" false (Cpu.mmu_enabled cpu);
  cpu.Cpu.cop.(Cregs.sctlr) <- 1;
  Alcotest.(check bool) "on" true (Cpu.mmu_enabled cpu)

let test_exception_entry_and_return () =
  let cpu = Cpu.create () in
  cpu.Cpu.cop.(Cregs.vbar) <- 0x8000;
  cpu.Cpu.mode <- Sb_mmu.Access.User;
  cpu.Cpu.irq_enabled <- true;
  cpu.Cpu.flag_z <- true;
  cpu.Cpu.pc <- 0x1234;
  Exn.enter cpu Exn.Data_abort ~return_addr:0x1234 ~far:0x6000_0000
    ~cause:Exn.Cause.data_translation ();
  Alcotest.(check int) "vector pc" (0x8000 + Exn.vector_offset Exn.Data_abort)
    cpu.Cpu.pc;
  Alcotest.(check int) "elr" 0x1234 cpu.Cpu.cop.(Cregs.elr);
  Alcotest.(check int) "far" 0x6000_0000 cpu.Cpu.cop.(Cregs.far);
  Alcotest.(check int) "esr" Exn.Cause.data_translation cpu.Cpu.cop.(Cregs.esr);
  Alcotest.(check bool) "kernel now" true (cpu.Cpu.mode = Sb_mmu.Access.Kernel);
  Alcotest.(check bool) "irqs masked" false cpu.Cpu.irq_enabled;
  (* ERET restores everything *)
  Exn.eret cpu;
  Alcotest.(check int) "pc restored" 0x1234 cpu.Cpu.pc;
  Alcotest.(check bool) "mode restored" true (cpu.Cpu.mode = Sb_mmu.Access.User);
  Alcotest.(check bool) "irq restored" true cpu.Cpu.irq_enabled;
  Alcotest.(check bool) "flags restored" true cpu.Cpu.flag_z

let test_vector_offsets_distinct () =
  let vs = [ Exn.Reset; Exn.Undefined; Exn.Syscall; Exn.Prefetch_abort; Exn.Data_abort; Exn.Irq ] in
  let offsets = List.map Exn.vector_offset vs in
  Alcotest.(check int) "all distinct" (List.length vs)
    (List.length (List.sort_uniq compare offsets));
  List.iter
    (fun o -> Alcotest.(check int) "8-byte slots" 0 (o mod 8))
    offsets

let test_cause_mapping () =
  let open Sb_mmu.Access in
  Alcotest.(check int) "exec translation" Exn.Cause.prefetch_translation
    (Exn.Cause.of_fault ~kind:Execute Translation);
  Alcotest.(check int) "read permission" Exn.Cause.data_permission
    (Exn.Cause.of_fault ~kind:Read Permission);
  Alcotest.(check int) "write translation" Exn.Cause.data_translation
    (Exn.Cause.of_fault ~kind:Write Translation)

let test_cop_semantics () =
  let cpu = Cpu.create () in
  (* ordinary write/read *)
  (match Cop.write cpu ~creg:Cregs.dacr ~value:0x55 with
  | Ok Cop.No_effect -> ()
  | _ -> Alcotest.fail "dacr write is plain");
  Alcotest.(check bool) "readback" true (Cop.read cpu ~creg:Cregs.dacr = Ok 0x55);
  (* translation-affecting writes *)
  (match Cop.write cpu ~creg:Cregs.ttbr ~value:0x4000 with
  | Ok Cop.Translation_changed -> ()
  | _ -> Alcotest.fail "ttbr changes translation");
  (match Cop.write cpu ~creg:Cregs.sctlr ~value:1 with
  | Ok Cop.Translation_changed -> ()
  | _ -> Alcotest.fail "sctlr changes translation");
  (* cpuid is read-only *)
  let id = cpu.Cpu.cop.(Cregs.cpuid) in
  (match Cop.write cpu ~creg:Cregs.cpuid ~value:0 with
  | Ok Cop.No_effect -> ()
  | _ -> Alcotest.fail "cpuid write ignored");
  Alcotest.(check int) "cpuid unchanged" id cpu.Cpu.cop.(Cregs.cpuid);
  (* unarchitected register numbers *)
  Alcotest.(check bool) "bad read" true (Cop.read cpu ~creg:99 = Error `Undefined);
  Alcotest.(check bool) "bad write" true
    (Cop.write cpu ~creg:99 ~value:0 = Error `Undefined)

let test_alu_eval () =
  Alcotest.(check int) "add wraps" 0 (Alu.eval Uop.Add 0xFFFF_FFFF 1);
  Alcotest.(check int) "mul wraps" 0xFFFFFFFE (Alu.eval Uop.Mul 0xFFFF_FFFF 2);
  Alcotest.(check int) "asr" 0xFFFF_FFFF (Alu.eval Uop.Asr 0x8000_0000 31);
  let _, n, z, c, v = Alu.eval_flags Uop.Sub 5 5 in
  Alcotest.(check bool) "z on equal" true z;
  Alcotest.(check bool) "c set (no borrow)" true c;
  Alcotest.(check bool) "n clear" false n;
  Alcotest.(check bool) "v clear" false v;
  let _, n, _, c, _ = Alu.eval_flags Uop.Sub 3 5 in
  Alcotest.(check bool) "borrow clears c" false c;
  Alcotest.(check bool) "negative sets n" true n;
  let _, _, _, c, v = Alu.eval_flags Uop.Add 0x7FFF_FFFF 1 in
  Alcotest.(check bool) "signed overflow" true v;
  Alcotest.(check bool) "no carry" false c;
  (* logical ops clear c/v *)
  let _, _, _, c, v = Alu.eval_flags Uop.And_ 0xF 0xF0 in
  Alcotest.(check bool) "and clears c" false c;
  Alcotest.(check bool) "and clears v" false v

let test_eval_cond_matrix () =
  let open Uop in
  let t = true and f = false in
  (* (cond, n, z, c, v, expected) *)
  let cases =
    [
      (Always, f, f, f, f, t);
      (Eq, f, t, f, f, t);
      (Eq, f, f, f, f, f);
      (Ne, f, f, f, f, t);
      (Lt, t, f, f, f, t);   (* n <> v *)
      (Lt, t, f, f, t, f);
      (Ge, t, f, f, t, t);   (* n = v *)
      (Ltu, f, f, f, f, t);  (* not c *)
      (Geu, f, f, t, f, t);
    ]
  in
  List.iteri
    (fun i (cond, n, z, c, v, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d" i)
        expected
        (eval_cond cond ~n ~z ~c ~v))
    cases

let test_perf_counters () =
  let p = Perf.create () in
  Perf.incr p Perf.Insns;
  Perf.add p Perf.Loads 5;
  Alcotest.(check int) "get" 5 (Perf.get p Perf.Loads);
  let snap = Perf.copy p in
  Perf.add p Perf.Loads 3;
  let d = Perf.diff ~after:p ~before:snap in
  Alcotest.(check int) "diff" 3 (Perf.get d Perf.Loads);
  Alcotest.(check int) "diff untouched" 0 (Perf.get d Perf.Insns);
  Alcotest.(check int) "alist skips zeros" 2 (List.length (Perf.to_alist p));
  Perf.reset p;
  Alcotest.(check int) "reset" 0 (Perf.get p Perf.Insns);
  (* every counter has a printable name and a distinct enum slot *)
  let names = List.map Perf.to_string Perf.all in
  Alcotest.(check int) "names distinct" (List.length Perf.all)
    (List.length (List.sort_uniq compare names))

let test_machine_construction () =
  let m = Sb_sim.Machine.create ~ram_size:(1 lsl 20) () in
  Alcotest.(check int) "ram size" (1 lsl 20) m.Sb_sim.Machine.ram_size;
  Alcotest.(check bool) "no irq pending" false (Sb_sim.Machine.irq_pending m);
  (* pending line + enabled + cpu mask *)
  Sb_mem.Intc.raise_line m.Sb_sim.Machine.intc 0;
  Alcotest.(check bool) "masked at intc" false (Sb_sim.Machine.irq_pending m);
  Sb_mem.Bus.write32 m.Sb_sim.Machine.bus (Sb_sim.Machine.Map.intc_base + 4) 1;
  Alcotest.(check bool) "cpu still masked" false (Sb_sim.Machine.irq_pending m);
  m.Sb_sim.Machine.cpu.Cpu.irq_enabled <- true;
  Alcotest.(check bool) "pending now" true (Sb_sim.Machine.irq_pending m)

let test_run_result_accessors () =
  let p = Perf.create () in
  Perf.add p Perf.Insns 7;
  let r =
    {
      Sb_sim.Run_result.engine = "test";
      stop = Sb_sim.Run_result.Halted;
      wall_seconds = 0.5;
      kernel_seconds = None;
      perf = p;
      kernel_perf = None;
      exit_code = 0;
      uart_output = "";
      tested_ops = 0;
      insns_into_kernel = None;
    }
  in
  Alcotest.(check int) "insns" 7 (Sb_sim.Run_result.insns r);
  Alcotest.(check bool) "no kernel insns" true (Sb_sim.Run_result.kernel_insns r = None)

let () =
  Alcotest.run "sb_sim"
    [
      ( "cpu",
        [
          Alcotest.test_case "reset" `Quick test_cpu_reset;
          Alcotest.test_case "psr roundtrip" `Quick test_psr_roundtrip;
          Alcotest.test_case "mmu bit" `Quick test_mmu_enable_bit;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "entry/return" `Quick test_exception_entry_and_return;
          Alcotest.test_case "vector offsets" `Quick test_vector_offsets_distinct;
          Alcotest.test_case "cause mapping" `Quick test_cause_mapping;
        ] );
      ( "cop", [ Alcotest.test_case "semantics" `Quick test_cop_semantics ] );
      ( "alu",
        [
          Alcotest.test_case "eval and flags" `Quick test_alu_eval;
          Alcotest.test_case "condition matrix" `Quick test_eval_cond_matrix;
        ] );
      ( "perf", [ Alcotest.test_case "counters" `Quick test_perf_counters ] );
      ( "machine",
        [
          Alcotest.test_case "construction" `Quick test_machine_construction;
          Alcotest.test_case "run result" `Quick test_run_result_accessors;
        ] );
    ]
