(* Tests for statistical regression detection (Sb_regress): the JSON
   parser round-trip with position-carrying errors, CI-overlap
   classification on synthetic repeat vectors, run pairing (engine remap,
   iteration-count mismatches), category attribution, compare exit codes,
   and clean rejection of old-schema files (JSON and jobs cache). *)

module Json = Sb_util.Json
module Stats = Sb_util.Stats
module Regress = Sb_regress.Regress
module Baseline = Sb_regress.Baseline
module Cache = Sb_jobs.Cache

let contains haystack needle =
  let n = String.length needle in
  let rec loop i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || loop (i + 1)
  in
  loop 0

let tmp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.int 1_000_000))
  in
  Cache.mkdir_p dir;
  dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Json parsing                                                         *)
(* ------------------------------------------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool a, Json.Bool b -> a = b
  | Json.Int a, Json.Int b -> a = b
  | Json.Float a, Json.Float b -> a = b
  | Json.String a, Json.String b -> a = b
  | Json.List a, Json.List b ->
    List.length a = List.length b && List.for_all2 json_equal a b
  | Json.Obj a, Json.Obj b ->
    List.length a = List.length b
    && List.for_all2
         (fun (ka, va) (kb, vb) -> ka = kb && json_equal va vb)
         a b
  | _ -> false

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int 1_000_000 ]);
        ("floats", Json.List [ Json.Float 1.5; Json.Float (-3.25e-9) ]);
        ("escapes", Json.String "a\"b\\c\nd\te\r<\001>");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round trip" true (json_equal v v')
  | Error msg -> Alcotest.fail msg

let test_json_values () =
  let ok s = match Json.of_string s with Ok v -> v | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "int" true (json_equal (Json.Int 42) (ok " 42 "));
  Alcotest.(check bool) "negative float" true
    (json_equal (Json.Float (-0.5)) (ok "-0.5"));
  Alcotest.(check bool) "exponent is a float" true
    (json_equal (Json.Float 1000.) (ok "1e3"));
  Alcotest.(check bool) "unicode escape" true
    (json_equal (Json.String "A") (ok "\"\\u0041\""));
  (* surrogate pair: U+1F600 as 4 UTF-8 bytes *)
  Alcotest.(check bool) "surrogate pair" true
    (json_equal (Json.String "\xf0\x9f\x98\x80") (ok "\"\\ud83d\\ude00\""));
  Alcotest.(check bool) "null maps to nan via float accessor" true
    (match Json.float_opt (ok "null") with Some f -> Float.is_nan f | None -> false)

let test_json_error_positions () =
  let err s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error msg -> msg
  in
  Alcotest.(check bool) "missing value column" true
    (contains (err "{\"a\": }") "line 1, column 7");
  let multi = err "[1,\n2,\nx]" in
  Alcotest.(check bool) "error on line 3" true (contains multi "line 3, column 1");
  Alcotest.(check bool) "trailing garbage" true
    (contains (err "1 x") "trailing garbage");
  Alcotest.(check bool) "unterminated string" true
    (contains (err "\"abc") "unterminated string");
  Alcotest.(check bool) "bad literal" true (contains (err "[tru]") "expected \"true\"");
  Alcotest.(check bool) "unpaired surrogate" true
    (contains (err "\"\\ud800\"") "surrogate")

(* ------------------------------------------------------------------ *)
(* Classification                                                       *)
(* ------------------------------------------------------------------ *)

let cell ?(experiment = "figX") ?(engine = "dbt:v1.7.0") ?(arch = "sba")
    ?(iters = 1000) ?(insns = 5_000) ?(status = "ok") ~name samples =
  {
    Regress.experiment;
    engine;
    arch;
    cell = name;
    iters;
    repeats = List.length samples;
    seconds = Stats.min_of_repeats samples;
    mean_seconds = Stats.mean samples;
    samples;
    kernel_insns = insns;
    perf = [];
    status;
  }

let classify olds news =
  Regress.classify ~threshold:0.05
    ~old_cell:(cell ~name:"Small Blocks" olds)
    ~new_cell:(cell ~name:"Small Blocks" news)

let test_classify_regression () =
  let c = classify [ 1.0; 1.01; 0.99 ] [ 1.30; 1.31; 1.29 ] in
  Alcotest.(check bool) "regressed" true (c.Regress.c_verdict = Regress.Regressed);
  Alcotest.(check bool) "confirmed" true (c.Regress.c_note = Regress.Confirmed);
  Alcotest.(check bool) "delta ~30%" true
    (c.Regress.c_delta > 0.25 && c.Regress.c_delta < 0.35)

let test_classify_improvement () =
  let c = classify [ 1.0; 1.01; 0.99 ] [ 0.70; 0.71; 0.69 ] in
  Alcotest.(check bool) "improved" true (c.Regress.c_verdict = Regress.Improved);
  Alcotest.(check bool) "confirmed" true (c.Regress.c_note = Regress.Confirmed)

let test_classify_null_below_threshold () =
  (* jitter-only: 1-2% shifts stay unchanged whatever the intervals say *)
  let c = classify [ 1.0; 1.02 ] [ 1.01; 1.03 ] in
  Alcotest.(check bool) "unchanged" true (c.Regress.c_verdict = Regress.Unchanged);
  Alcotest.(check bool) "below threshold" true
    (c.Regress.c_note = Regress.Below_threshold)

let test_classify_null_within_noise () =
  (* a 20% shift of the minima, but the repeats are so noisy that the 95%
     intervals overlap: must NOT be confirmed *)
  let c = classify [ 1.0; 1.4 ] [ 1.2; 1.6 ] in
  Alcotest.(check bool) "unchanged" true (c.Regress.c_verdict = Regress.Unchanged);
  Alcotest.(check bool) "within noise" true (c.Regress.c_note = Regress.Within_noise)

let test_classify_single_sample () =
  (* one repeat per side: point intervals, so the threshold decides *)
  let c = classify [ 1.0 ] [ 1.2 ] in
  Alcotest.(check bool) "regressed" true (c.Regress.c_verdict = Regress.Regressed);
  let c = classify [ 1.0 ] [ 1.03 ] in
  Alcotest.(check bool) "3% stays unchanged" true
    (c.Regress.c_verdict = Regress.Unchanged)

let test_ci_helpers () =
  let lo, hi = Stats.ci95 [ 1.0; 1.1; 0.9; 1.05; 0.95 ] in
  Alcotest.(check bool) "interval brackets the mean" true (lo < 1.0 && hi > 1.0);
  Alcotest.(check bool) "point interval" true (Stats.ci95 [ 2.0 ] = (2.0, 2.0));
  Alcotest.(check bool) "overlap" true (Stats.intervals_overlap (0., 1.) (0.5, 2.));
  Alcotest.(check bool) "disjoint" false (Stats.intervals_overlap (0., 1.) (1.5, 2.));
  Alcotest.(check bool) "nan overlaps" true
    (Stats.intervals_overlap (nan, nan) (1.5, 2.))

(* ------------------------------------------------------------------ *)
(* Pairing and attribution                                              *)
(* ------------------------------------------------------------------ *)

let run ~source cells = { Regress.source; cells }

let test_compare_runs_pairing () =
  let old_run =
    run ~source:"old"
      [
        cell ~name:"Small Blocks" [ 1.0; 1.01 ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
        cell ~name:"Removed Cell" [ 0.2 ];
        cell ~name:"Mismatched" ~iters:100 [ 0.3 ];
      ]
  in
  let new_run =
    run ~source:"new"
      [
        cell ~name:"Small Blocks" [ 1.5; 1.51 ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
        cell ~name:"Added Cell" [ 0.1 ];
        cell ~name:"Mismatched" ~iters:200 [ 0.3 ];
      ]
  in
  let report = Regress.compare_runs ~old_run ~new_run () in
  Alcotest.(check int) "two comparable pairs" 2 (List.length report.Regress.r_pairs);
  Alcotest.(check int) "one only-old" 1 (List.length report.Regress.r_only_old);
  Alcotest.(check int) "one only-new" 1 (List.length report.Regress.r_only_new);
  Alcotest.(check int) "one iters mismatch" 1 (List.length report.Regress.r_mismatched);
  Alcotest.(check int) "one regression" 1 (List.length (Regress.regressions report));
  Alcotest.(check bool) "no engine remap" true (report.Regress.r_engine_remap = None)

let test_compare_runs_engine_remap () =
  (* same cells under two different single engine labels: the v1.7.0 vs
     v2.5.0-rc2 scenario — paired across the rename, and said so *)
  let old_run =
    run ~source:"old" [ cell ~engine:"dbt:v1.7.0" ~name:"mcf" [ 1.0; 1.01 ] ]
  in
  let new_run =
    run ~source:"new" [ cell ~engine:"dbt:v2.5.0-rc2" ~name:"mcf" [ 1.8; 1.81 ] ]
  in
  let report = Regress.compare_runs ~old_run ~new_run () in
  Alcotest.(check int) "paired across engines" 1 (List.length report.Regress.r_pairs);
  Alcotest.(check bool) "remap recorded" true
    (report.Regress.r_engine_remap = Some ("dbt:v1.7.0", "dbt:v2.5.0-rc2"));
  Alcotest.(check int) "regression found" 1 (List.length (Regress.regressions report))

let test_duplicate_cells_deduped () =
  (* the same memoized sweep cell recorded by two experiments must pair once *)
  let dup name =
    [
      cell ~experiment:"fig2" ~name [ 1.0; 1.01 ];
      cell ~experiment:"fig8" ~name [ 1.0; 1.01 ];
    ]
  in
  let report =
    Regress.compare_runs
      ~old_run:(run ~source:"old" (dup "sjeng"))
      ~new_run:(run ~source:"new" (dup "sjeng"))
      ()
  in
  Alcotest.(check int) "one pair" 1 (List.length report.Regress.r_pairs)

let test_category_attribution () =
  Alcotest.(check string) "suite bench" "Code Generation"
    (Regress.category_of_cell "Small Blocks");
  Alcotest.(check string) "exception bench" "Exception Handling"
    (Regress.category_of_cell "System Call");
  Alcotest.(check string) "workload" "Application" (Regress.category_of_cell "mcf");
  Alcotest.(check string) "unknown" "Other" (Regress.category_of_cell "nonesuch");
  let old_run =
    run ~source:"old"
      [
        cell ~name:"Small Blocks" [ 1.0; 1.01 ];
        cell ~name:"Large Blocks" [ 1.0; 1.01 ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
      ]
  in
  let new_run =
    run ~source:"new"
      [
        cell ~name:"Small Blocks" [ 1.4; 1.41 ];
        cell ~name:"Large Blocks" [ 1.3; 1.31 ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
      ]
  in
  let report = Regress.compare_runs ~old_run ~new_run () in
  let cats = Regress.attribution report in
  let find name = List.find (fun s -> s.Regress.cat_name = name) cats in
  let cg = find "Code Generation" in
  Alcotest.(check int) "both code-gen cells regressed" 2 cg.Regress.cat_regressed;
  Alcotest.(check bool) "geomean ratio up" true (cg.Regress.cat_geomean_ratio > 1.2);
  let eh = find "Exception Handling" in
  Alcotest.(check int) "exceptions unchanged" 0 eh.Regress.cat_regressed;
  let rendered = Regress.render report in
  Alcotest.(check bool) "render flags regression" true (contains rendered "REGRESSED");
  Alcotest.(check bool) "render attributes code-gen" true
    (contains rendered "Code Generation regressed");
  Alcotest.(check bool) "render names the mechanism" true
    (contains rendered "translation / code-generation")

let test_failed_cells_skipped_with_note () =
  (* a cell whose harness status records a failure must be skipped with a
     note, never classified — a timeout's nan seconds would otherwise
     read as a regression (or worse, an improvement) *)
  let old_run =
    run ~source:"old"
      [
        cell ~name:"Small Blocks" [ 1.0; 1.01 ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
      ]
  in
  let new_run =
    run ~source:"new"
      [
        cell ~name:"Small Blocks" ~status:"timeout" [ nan ];
        cell ~name:"System Call" [ 0.5; 0.51 ];
      ]
  in
  let report = Regress.compare_runs ~old_run ~new_run () in
  Alcotest.(check int) "one comparable pair" 1 (List.length report.Regress.r_pairs);
  Alcotest.(check int) "one status skip" 1
    (List.length report.Regress.r_skipped_status);
  Alcotest.(check int) "no regressions invented" 0
    (List.length (Regress.regressions report));
  let rendered = Regress.render report in
  Alcotest.(check bool) "render lists the skipped cell" true
    (contains rendered "Small Blocks");
  Alcotest.(check bool) "render names the status" true
    (contains rendered "timeout");
  Alcotest.(check bool) "summary counts the skip" true
    (contains rendered "skipped (failed/timeout cells)");
  (* retried cells carry a good value: compared normally *)
  let report =
    Regress.compare_runs
      ~old_run:(run ~source:"o" [ cell ~name:"mcf" [ 1.0; 1.01 ] ])
      ~new_run:(run ~source:"n" [ cell ~name:"mcf" ~status:"retried 1" [ 1.0; 1.02 ] ])
      ()
  in
  Alcotest.(check int) "retried still compared" 1 (List.length report.Regress.r_pairs);
  Alcotest.(check int) "no skip for retried" 0
    (List.length report.Regress.r_skipped_status)

let test_degenerate_samples_skipped () =
  (* one (or zero) repeats per side: no noise estimate exists, so the
     pair is reported skipped instead of pretending a verdict *)
  let report =
    Regress.compare_runs
      ~old_run:(run ~source:"o" [ cell ~name:"Small Blocks" [ 1.0 ] ])
      ~new_run:(run ~source:"n" [ cell ~name:"Small Blocks" [ 1.3 ] ])
      ()
  in
  Alcotest.(check int) "no pairs classified" 0 (List.length report.Regress.r_pairs);
  Alcotest.(check int) "skipped for samples" 1
    (List.length report.Regress.r_skipped_samples);
  Alcotest.(check int) "no regression from a point interval" 0
    (List.length (Regress.regressions report));
  let rendered = Regress.render report in
  Alcotest.(check bool) "summary names insufficient samples" true
    (contains rendered "insufficient samples");
  (* zero-sample cells too (a failed cell from a schema-2 file reads as
     status ok with an empty vector): still skipped, not a crash *)
  let report =
    Regress.compare_runs
      ~old_run:(run ~source:"o" [ cell ~name:"mcf" [] ])
      ~new_run:(run ~source:"n" [ cell ~name:"mcf" [ 1.0; 1.1 ] ])
      ()
  in
  Alcotest.(check int) "empty vector skipped" 1
    (List.length report.Regress.r_skipped_samples);
  (* and the JSON report carries the counts *)
  let j = Regress.to_json report in
  match Json.member "skipped_samples" j with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "skipped_samples missing from JSON report"

let test_exit_codes () =
  let regressing =
    Regress.compare_runs
      ~old_run:(run ~source:"o" [ cell ~name:"Small Blocks" [ 1.0; 1.01 ] ])
      ~new_run:(run ~source:"n" [ cell ~name:"Small Blocks" [ 1.5; 1.51 ] ])
      ()
  in
  let clean =
    Regress.compare_runs
      ~old_run:(run ~source:"o" [ cell ~name:"Small Blocks" [ 1.0; 1.01 ] ])
      ~new_run:(run ~source:"n" [ cell ~name:"Small Blocks" [ 1.0; 1.02 ] ])
      ()
  in
  Alcotest.(check int) "strict + regression = 1" 1
    (Regress.exit_code ~strict:true regressing);
  Alcotest.(check int) "non-strict + regression = 0" 0
    (Regress.exit_code ~strict:false regressing);
  Alcotest.(check int) "strict + clean = 0" 0 (Regress.exit_code ~strict:true clean);
  Alcotest.(check int) "non-strict + clean = 0" 0
    (Regress.exit_code ~strict:false clean)

(* ------------------------------------------------------------------ *)
(* Serialization and schema migration                                   *)
(* ------------------------------------------------------------------ *)

let test_snapshot_round_trip () =
  let dir = tmp_dir "sb_regress_snap" in
  let cells =
    [
      cell ~name:"Small Blocks" ~insns:1234 [ 1.0; 1.25 ];
      cell ~name:"System Call" ~arch:"vlx" [ 0.5 ];
    ]
  in
  let out = Filename.concat dir "baseline.json" in
  Baseline.write_snapshot ~out (run ~source:"unit-test" cells);
  (match Baseline.load out with
  | Error msg -> Alcotest.fail msg
  | Ok loaded ->
    Alcotest.(check int) "cell count" 2 (List.length loaded.Regress.cells);
    List.iter2
      (fun (a : Regress.cell) (b : Regress.cell) ->
        Alcotest.(check string) "cell" a.Regress.cell b.Regress.cell;
        Alcotest.(check string) "engine" a.Regress.engine b.Regress.engine;
        Alcotest.(check string) "arch" a.Regress.arch b.Regress.arch;
        Alcotest.(check int) "iters" a.Regress.iters b.Regress.iters;
        Alcotest.(check int) "insns" a.Regress.kernel_insns b.Regress.kernel_insns;
        Alcotest.(check (list (float 1e-9))) "samples" a.Regress.samples
          b.Regress.samples)
      cells loaded.Regress.cells);
  rm_rf dir

let test_old_schema_rejected () =
  let dir = tmp_dir "sb_regress_schema" in
  (* a pre-samples bench file: no "schema" field at all *)
  let old_file = Filename.concat dir "BENCH_fig7.json" in
  write_file old_file
    "{\"experiment\":\"fig7\",\"jobs\":1,\"cells\":[{\"cell\":\"Small \
     Blocks\",\"engine\":\"dbt\",\"arch\":\"sba\",\"iters\":10,\"repeats\":1,\"seconds\":0.1,\"mean_seconds\":0.1,\"kernel_insns\":5}]}";
  (match Baseline.load_bench_file old_file with
  | Ok _ -> Alcotest.fail "old-schema file must be rejected"
  | Error msg ->
    Alcotest.(check bool) "message names the file" true (contains msg "BENCH_fig7.json");
    Alcotest.(check bool) "message explains the schema" true (contains msg "schema"));
  (* an unknown future schema tag is also rejected, by name *)
  let future = Filename.concat dir "BENCH_fig8.json" in
  write_file future "{\"schema\":\"simbench-bench-json-99\",\"cells\":[]}";
  (match Baseline.load_bench_file future with
  | Ok _ -> Alcotest.fail "wrong-schema file must be rejected"
  | Error msg ->
    Alcotest.(check bool) "names both schemas" true
      (contains msg "simbench-bench-json-99"
      && contains msg Baseline.bench_schema));
  (* malformed JSON surfaces the parser's position *)
  let bad = Filename.concat dir "BENCH_bad.json" in
  write_file bad "{\"schema\": }";
  (match Baseline.load_bench_file bad with
  | Ok _ -> Alcotest.fail "malformed file must be rejected"
  | Error msg -> Alcotest.(check bool) "position carried" true (contains msg "column"));
  rm_rf dir

let test_missing_field_named () =
  let dir = tmp_dir "sb_regress_field" in
  let file = Filename.concat dir "BENCH_x.json" in
  write_file file
    (Printf.sprintf
       "{\"schema\":%S,\"experiment\":\"x\",\"cells\":[{\"cell\":\"C\",\"engine\":\"e\",\"arch\":\"sba\",\"iters\":1,\"repeats\":1,\"seconds\":0.1,\"mean_seconds\":0.1,\"kernel_insns\":5}]}"
       Baseline.bench_schema);
  (match Baseline.load_bench_file file with
  | Ok _ -> Alcotest.fail "missing samples must be rejected"
  | Error msg ->
    Alcotest.(check bool) "names the field" true (contains msg "samples");
    Alcotest.(check bool) "names the cell" true (contains msg "\"C\""));
  rm_rf dir

let test_cache_eviction_logged () =
  (* the CI cache-poisoning bugfix: corrupt cache entries degrade to
     misses but are counted (and warned about), and the offending file is
     removed *)
  let dir = tmp_dir "sb_regress_cache" in
  let cache = Cache.create ~dir in
  Cache.reset_evictions ();
  Cache.store cache ~key:"feedface" 7;
  Alcotest.(check (option int)) "round trip" (Some 7) (Cache.load cache ~key:"feedface");
  Alcotest.(check int) "no evictions yet" 0 (Cache.evictions ());
  let file =
    Filename.concat dir
      (List.find
         (fun f -> Filename.check_suffix f ".cache")
         (Array.to_list (Sys.readdir dir)))
  in
  write_file file "poisoned";
  Alcotest.(check (option int)) "corrupt is a miss" None
    (Cache.load cache ~key:"feedface");
  Alcotest.(check int) "eviction counted" 1 (Cache.evictions ());
  Alcotest.(check bool) "offending file removed" false (Sys.file_exists file);
  Alcotest.(check (option int)) "second load is a plain miss" None
    (Cache.load cache ~key:"feedface");
  Alcotest.(check int) "not double-counted" 1 (Cache.evictions ());
  Cache.reset_evictions ();
  rm_rf dir

let () =
  Random.self_init ();
  Alcotest.run "sb_regress"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "error positions" `Quick test_json_error_positions;
        ] );
      ( "classify",
        [
          Alcotest.test_case "regression" `Quick test_classify_regression;
          Alcotest.test_case "improvement" `Quick test_classify_improvement;
          Alcotest.test_case "null: below threshold" `Quick
            test_classify_null_below_threshold;
          Alcotest.test_case "null: within noise" `Quick
            test_classify_null_within_noise;
          Alcotest.test_case "single sample" `Quick test_classify_single_sample;
          Alcotest.test_case "ci helpers" `Quick test_ci_helpers;
        ] );
      ( "compare",
        [
          Alcotest.test_case "pairing" `Quick test_compare_runs_pairing;
          Alcotest.test_case "engine remap" `Quick test_compare_runs_engine_remap;
          Alcotest.test_case "dedup" `Quick test_duplicate_cells_deduped;
          Alcotest.test_case "attribution" `Quick test_category_attribution;
          Alcotest.test_case "failed cells skipped" `Quick
            test_failed_cells_skipped_with_note;
          Alcotest.test_case "degenerate samples skipped" `Quick
            test_degenerate_samples_skipped;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "schema",
        [
          Alcotest.test_case "snapshot round trip" `Quick test_snapshot_round_trip;
          Alcotest.test_case "old schema rejected" `Quick test_old_schema_rejected;
          Alcotest.test_case "missing field named" `Quick test_missing_field_named;
          Alcotest.test_case "cache eviction logged" `Quick
            test_cache_eviction_logged;
        ] );
    ]
