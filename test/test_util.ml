(* Unit and property tests for Sb_util. *)



let test_u32_basics () =
  Alcotest.(check int) "mask" 0xFFFF_FFFF Sb_util.U32.mask;
  Alcotest.(check int) "add wraps" 0 (Sb_util.U32.add 0xFFFF_FFFF 1);
  Alcotest.(check int) "sub wraps" 0xFFFF_FFFF (Sb_util.U32.sub 0 1);
  Alcotest.(check int) "to_signed -1" (-1) (Sb_util.U32.to_signed 0xFFFF_FFFF);
  Alcotest.(check int) "to_signed min" (-0x8000_0000) (Sb_util.U32.to_signed 0x8000_0000);
  Alcotest.(check int) "lognot" 0xFFFF_FF00 (Sb_util.U32.lognot 0xFF)

let test_u32_shifts () =
  Alcotest.(check int) "lsl" 0x10 (Sb_util.U32.shift_left 1 4);
  Alcotest.(check int) "lsl out" 0 (Sb_util.U32.shift_left 1 32);
  Alcotest.(check int) "lsr" 0x0FFF_FFFF (Sb_util.U32.shift_right_logical 0xFFFF_FFFF 4);
  Alcotest.(check int) "asr sign" 0xFFFF_FFFF (Sb_util.U32.shift_right_arith 0x8000_0000 31);
  Alcotest.(check int) "asr cap" 0xFFFF_FFFF (Sb_util.U32.shift_right_arith 0x8000_0000 63)

let test_u32_flags () =
  let r, c, v = Sb_util.U32.add_with_flags 0xFFFF_FFFF 1 in
  Alcotest.(check int) "add carry result" 0 r;
  Alcotest.(check bool) "add carry" true c;
  Alcotest.(check bool) "add no ovf" false v;
  let r, c, v = Sb_util.U32.add_with_flags 0x7FFF_FFFF 1 in
  Alcotest.(check int) "add ovf result" 0x8000_0000 r;
  Alcotest.(check bool) "add no carry" false c;
  Alcotest.(check bool) "add ovf" true v;
  let _, borrow, _ = Sb_util.U32.sub_with_flags 0 1 in
  Alcotest.(check bool) "sub borrow" true borrow

let test_sign_extend () =
  Alcotest.(check int) "positive" 5 (Sb_util.U32.sign_extend ~bits:14 5);
  Alcotest.(check int) "negative" 0xFFFF_FFFF (Sb_util.U32.sign_extend ~bits:14 0x3FFF);
  Alcotest.(check int) "boundary" 0xFFFF_E000 (Sb_util.U32.sign_extend ~bits:14 0x2000)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Sb_util.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Sb_util.Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9))
    "weighted geomean equal weights = geomean" 2.
    (Sb_util.Stats.weighted_geomean [ (1., 1.); (4., 1.) ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Sb_util.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Sb_util.Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "speedup" 2. (Sb_util.Stats.speedup ~baseline:4. 2.);
  Alcotest.(check (float 0.)) "min of repeats" 1.5
    (Sb_util.Stats.min_of_repeats [ 2.5; 1.5; 3.0 ]);
  Alcotest.(check (float 0.)) "min of singleton" 4.0 (Sb_util.Stats.min_of_repeats [ 4.0 ]);
  Alcotest.(check bool) "min of empty is nan" true
    (Float.is_nan (Sb_util.Stats.min_of_repeats []))

let test_json () =
  let open Sb_util.Json in
  Alcotest.(check string) "scalars" {|[null,true,42,"a\"b\n"]|}
    (to_string (List [ Null; Bool true; Int 42; String "a\"b\n" ]));
  Alcotest.(check string) "object" {|{"x":1.5,"y":[]}|}
    (to_string (Obj [ ("x", Float 1.5); ("y", List []) ]));
  Alcotest.(check string) "non-finite floats are null" {|[null,null]|}
    (to_string (List [ Float nan; Float infinity ]));
  Alcotest.(check string) "control chars escaped" "\"\\u0007\""
    (to_string (String "\007"))

let test_xorshift_deterministic () =
  let a = Sb_util.Xorshift.create ~seed:42 in
  let b = Sb_util.Xorshift.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Sb_util.Xorshift.next a) (Sb_util.Xorshift.next b)
  done

let test_xorshift_zero_seed () =
  let r = Sb_util.Xorshift.create ~seed:0 in
  Alcotest.(check bool) "nonzero output" true (Sb_util.Xorshift.next r <> 0)

let test_tablefmt () =
  let out =
    Sb_util.Tablefmt.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  Alcotest.(check bool) "has rule" true (String.contains out '-')

let test_hexdump () =
  let out = Sb_util.Hexdump.bytes ~base:0x1000 (Bytes.of_string "Hello, world!!!!") in
  Alcotest.(check bool) "address" true (String.length out >= 8 && String.sub out 0 8 = "00001000");
  let contains haystack needle =
    let n = String.length needle in
    let rec loop i =
      if i + n > String.length haystack then false
      else String.sub haystack i n = needle || loop (i + 1)
    in
    loop 0
  in
  Alcotest.(check bool) "ascii gutter" true (contains out "|Hello")

let prop_u32_add_assoc =
  QCheck.Test.make ~name:"u32 add associative" ~count:500
    QCheck.(triple (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b, c) ->
      Sb_util.U32.add (Sb_util.U32.add a b) c = Sb_util.U32.add a (Sb_util.U32.add b c))

let prop_u32_roundtrip_signed =
  QCheck.Test.make ~name:"u32 signed roundtrip" ~count:500
    QCheck.(int_range (-0x8000_0000) 0x7FFF_FFFF)
    (fun x -> Sb_util.U32.to_signed (Sb_util.U32.of_int x) = x)

let prop_geomean_bounds =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 10) (float_range 0.1 100.))
    (fun xs ->
      let g = Sb_util.Stats.geomean xs in
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sb_util"
    [
      ( "u32",
        [
          Alcotest.test_case "basics" `Quick test_u32_basics;
          Alcotest.test_case "shifts" `Quick test_u32_shifts;
          Alcotest.test_case "flags" `Quick test_u32_flags;
          Alcotest.test_case "sign_extend" `Quick test_sign_extend;
        ]
        @ qcheck [ prop_u32_add_assoc; prop_u32_roundtrip_signed ] );
      ( "stats",
        [ Alcotest.test_case "aggregates" `Quick test_stats ]
        @ qcheck [ prop_geomean_bounds ] );
      ("json", [ Alcotest.test_case "emitter" `Quick test_json ]);
      ( "xorshift",
        [
          Alcotest.test_case "deterministic" `Quick test_xorshift_deterministic;
          Alcotest.test_case "zero seed" `Quick test_xorshift_zero_seed;
        ] );
      ( "render",
        [
          Alcotest.test_case "tablefmt" `Quick test_tablefmt;
          Alcotest.test_case "hexdump" `Quick test_hexdump;
        ] );
    ]
