(* Tests for physical memory, bus routing and devices. *)

let make_machine () = Sb_sim.Machine.create ~ram_size:(1 lsl 20) ()

let test_phys_mem_rw () =
  let m = Sb_mem.Phys_mem.create ~size:4096 in
  Sb_mem.Phys_mem.write32 m 0 0xDEADBEEF;
  Alcotest.(check int) "read32" 0xDEADBEEF (Sb_mem.Phys_mem.read32 m 0);
  Alcotest.(check int) "read8 low" 0xEF (Sb_mem.Phys_mem.read8 m 0);
  Alcotest.(check int) "read8 high" 0xDE (Sb_mem.Phys_mem.read8 m 3);
  Alcotest.(check int) "read16" 0xBEEF (Sb_mem.Phys_mem.read16 m 0);
  Sb_mem.Phys_mem.write8 m 1 0x42;
  Alcotest.(check int) "byte patch" 0xDEAD42EF (Sb_mem.Phys_mem.read32 m 0)

let test_phys_mem_bounds () =
  let m = Sb_mem.Phys_mem.create ~size:16 in
  Alcotest.check_raises "oob read" (Sb_mem.Phys_mem.Out_of_range 16) (fun () ->
      ignore (Sb_mem.Phys_mem.read8 m 16));
  Alcotest.check_raises "straddling word" (Sb_mem.Phys_mem.Out_of_range 13) (fun () ->
      ignore (Sb_mem.Phys_mem.read32 m 13))

(* pins the unboxed read32/write32 recomposition: exact round-trips at every
   byte alignment, truncation to 32 bits, and unchanged Out_of_range
   behaviour (one bounds check up front, never a partial write) *)
let test_phys_mem_word_recomposition () =
  let m = Sb_mem.Phys_mem.create ~size:64 in
  List.iter
    (fun v ->
      List.iter
        (fun addr ->
          Sb_mem.Phys_mem.write32 m addr v;
          Alcotest.(check int)
            (Printf.sprintf "round trip %#x @%d" v addr)
            (v land 0xFFFF_FFFF)
            (Sb_mem.Phys_mem.read32 m addr))
        [ 0; 1; 2; 3; 17 ])
    [ 0; 1; 0xFFFF_FFFF; 0x8000_0000; 0x0102_0304; 0xDEADBEEF ];
  (* values above 32 bits truncate exactly like the old Int32 path *)
  Sb_mem.Phys_mem.write32 m 0 0x1_2345_6789;
  Alcotest.(check int) "truncated" 0x2345_6789 (Sb_mem.Phys_mem.read32 m 0);
  (* little-endian byte order is observable through read8 *)
  Sb_mem.Phys_mem.write32 m 8 0xAABBCCDD;
  Alcotest.(check int) "byte 0" 0xDD (Sb_mem.Phys_mem.read8 m 8);
  Alcotest.(check int) "byte 3" 0xAA (Sb_mem.Phys_mem.read8 m 11);
  (* bounds: negative, straddling and far-out addresses all raise before
     touching memory *)
  Alcotest.check_raises "oob write32" (Sb_mem.Phys_mem.Out_of_range 61) (fun () ->
      Sb_mem.Phys_mem.write32 m 61 0);
  Alcotest.check_raises "negative write32" (Sb_mem.Phys_mem.Out_of_range (-1))
    (fun () -> Sb_mem.Phys_mem.write32 m (-1) 0);
  Alcotest.check_raises "oob read32" (Sb_mem.Phys_mem.Out_of_range 61) (fun () ->
      ignore (Sb_mem.Phys_mem.read32 m 61));
  Alcotest.check_raises "negative read32" (Sb_mem.Phys_mem.Out_of_range (-1))
    (fun () -> ignore (Sb_mem.Phys_mem.read32 m (-1)));
  (* a refused write left the last word intact *)
  Sb_mem.Phys_mem.write32 m 60 0x11223344;
  (try Sb_mem.Phys_mem.write32 m 61 0xFFFFFFFF with Sb_mem.Phys_mem.Out_of_range _ -> ());
  Alcotest.(check int) "no partial write" 0x11223344 (Sb_mem.Phys_mem.read32 m 60)

(* pins the unboxed read16/write16 recomposition exactly like the 32-bit
   test above: round-trips at every alignment, truncation to 16 bits,
   little-endian order, and Out_of_range before any partial write *)
let test_phys_mem_halfword_recomposition () =
  let m = Sb_mem.Phys_mem.create ~size:64 in
  List.iter
    (fun v ->
      List.iter
        (fun addr ->
          Sb_mem.Phys_mem.write16 m addr v;
          Alcotest.(check int)
            (Printf.sprintf "round trip %#x @%d" v addr)
            (v land 0xFFFF)
            (Sb_mem.Phys_mem.read16 m addr))
        [ 0; 1; 2; 3; 17 ])
    [ 0; 1; 0xFFFF; 0x8000; 0x0102; 0xBEEF ];
  (* values above 16 bits truncate to the low halfword *)
  Sb_mem.Phys_mem.write16 m 0 0x1_2345;
  Alcotest.(check int) "truncated" 0x2345 (Sb_mem.Phys_mem.read16 m 0);
  (* little-endian byte order is observable through read8 *)
  Sb_mem.Phys_mem.write16 m 8 0xAABB;
  Alcotest.(check int) "byte 0" 0xBB (Sb_mem.Phys_mem.read8 m 8);
  Alcotest.(check int) "byte 1" 0xAA (Sb_mem.Phys_mem.read8 m 9);
  Alcotest.check_raises "oob write16" (Sb_mem.Phys_mem.Out_of_range 63) (fun () ->
      Sb_mem.Phys_mem.write16 m 63 0);
  Alcotest.check_raises "negative write16" (Sb_mem.Phys_mem.Out_of_range (-1))
    (fun () -> Sb_mem.Phys_mem.write16 m (-1) 0);
  Alcotest.check_raises "oob read16" (Sb_mem.Phys_mem.Out_of_range 63) (fun () ->
      ignore (Sb_mem.Phys_mem.read16 m 63));
  Alcotest.check_raises "negative read16" (Sb_mem.Phys_mem.Out_of_range (-1))
    (fun () -> ignore (Sb_mem.Phys_mem.read16 m (-1)));
  (* a refused write left the last halfword intact *)
  Sb_mem.Phys_mem.write16 m 62 0x1122;
  (try Sb_mem.Phys_mem.write16 m 63 0xFFFF with Sb_mem.Phys_mem.Out_of_range _ -> ());
  Alcotest.(check int) "no partial write" 0x1122 (Sb_mem.Phys_mem.read16 m 62)

(* the hoisted single-compare bounds check (power-of-two sizes compare the
   high address bits against one mask) must agree with the generic
   two-compare form at every boundary address: sweep [size-3 .. size] for
   every width on both a power-of-two and an odd-sized memory *)
let test_phys_mem_bounds_boundary () =
  List.iter
    (fun size ->
      let m = Sb_mem.Phys_mem.create ~size in
      List.iter
        (fun (width, read, write) ->
          for addr = size - 3 to size do
            let in_range = addr >= 0 && addr + width <= size in
            let label = Printf.sprintf "size=%d w=%d @%d" size width addr in
            if in_range then begin
              write m addr 0x5A;
              Alcotest.(check int) label 0x5A (read m addr land 0xFF)
            end
            else begin
              Alcotest.check_raises (label ^ " read")
                (Sb_mem.Phys_mem.Out_of_range addr) (fun () ->
                  ignore (read m addr));
              Alcotest.check_raises (label ^ " write")
                (Sb_mem.Phys_mem.Out_of_range addr) (fun () -> write m addr 0)
            end
          done)
        [
          (1, Sb_mem.Phys_mem.read8, Sb_mem.Phys_mem.write8);
          (2, Sb_mem.Phys_mem.read16, Sb_mem.Phys_mem.write16);
          (4, Sb_mem.Phys_mem.read32, Sb_mem.Phys_mem.write32);
        ])
    [ 64; 80 ]

(* the unchecked accessors must agree byte-for-byte with the checked ones
   inside a validated window (the micro-TLB fast path relies on this) *)
let test_phys_mem_unsafe_parity () =
  let m = Sb_mem.Phys_mem.create ~size:4096 in
  Sb_mem.Phys_mem.unsafe_write32 m 0 0xDEADBEEF;
  Sb_mem.Phys_mem.unsafe_write16 m 4 0xCAFE;
  Sb_mem.Phys_mem.unsafe_write8 m 6 0x42;
  Alcotest.(check int) "checked read32 sees unsafe write" 0xDEADBEEF
    (Sb_mem.Phys_mem.read32 m 0);
  Alcotest.(check int) "checked read16 sees unsafe write" 0xCAFE
    (Sb_mem.Phys_mem.read16 m 4);
  Alcotest.(check int) "unsafe read8" 0x42 (Sb_mem.Phys_mem.unsafe_read8 m 6);
  Alcotest.(check int) "unsafe read32" 0xDEADBEEF
    (Sb_mem.Phys_mem.unsafe_read32 m 0);
  Alcotest.(check int) "unsafe read16" 0xCAFE
    (Sb_mem.Phys_mem.unsafe_read16 m 4)

let test_phys_mem_load () =
  let m = Sb_mem.Phys_mem.create ~size:64 in
  Sb_mem.Phys_mem.load m ~addr:8 (Bytes.of_string "abcd");
  Alcotest.(check string) "blit out" "abcd"
    (Bytes.to_string (Sb_mem.Phys_mem.blit_out m ~addr:8 ~len:4))

let test_bus_ram_dispatch () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  Sb_mem.Bus.write32 bus 0x100 0xCAFE;
  Alcotest.(check int) "ram rw" 0xCAFE (Sb_mem.Bus.read32 bus 0x100);
  Alcotest.(check bool) "is_ram" true (Sb_mem.Bus.is_ram bus 0x100);
  Alcotest.(check bool) "not ram" false
    (Sb_mem.Bus.is_ram bus Sb_sim.Machine.Map.uart_base)

let test_bus_fault () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  Alcotest.check_raises "hole" (Sb_mem.Bus.Fault 0x2000_0000) (fun () ->
      ignore (Sb_mem.Bus.read32 bus 0x2000_0000))

let test_bus_overlap_rejected () =
  let ram = Sb_mem.Phys_mem.create ~size:4096 in
  let dev = Sb_mem.Device.rom ~name:"d" [] in
  let raised =
    try
      ignore (Sb_mem.Bus.create ~ram [ (0, 0x1000, dev) ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "overlaps ram rejected" true raised;
  let raised =
    try
      ignore
        (Sb_mem.Bus.create ~ram
           [ (0x10000, 0x1000, dev); (0x10800, 0x1000, dev) ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "overlapping windows rejected" true raised

let test_uart () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.uart_base in
  Sb_mem.Bus.write32 bus base (Char.code 'S');
  Sb_mem.Bus.write32 bus base (Char.code 'B');
  Alcotest.(check string) "tx" "SB" (Sb_mem.Uart.contents machine.Sb_sim.Machine.uart);
  Alcotest.(check int) "status ready" 1 (Sb_mem.Bus.read32 bus (base + 4));
  Alcotest.(check int) "txcount" 2 (Sb_mem.Bus.read32 bus (base + 8))

let test_intc_softint () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.intc_base in
  let intc = machine.Sb_sim.Machine.intc in
  Alcotest.(check bool) "idle" false (Sb_mem.Intc.asserted intc);
  (* raise software interrupt while masked: pending but not asserted *)
  Sb_mem.Bus.write32 bus (base + 0x8) 0x1;
  Alcotest.(check bool) "masked" false (Sb_mem.Intc.asserted intc);
  Sb_mem.Bus.write32 bus (base + 0x4) 0x1;
  Alcotest.(check bool) "asserted" true (Sb_mem.Intc.asserted intc);
  Alcotest.(check int) "pending reg" 1 (Sb_mem.Bus.read32 bus base);
  (* ack clears *)
  Sb_mem.Bus.write32 bus (base + 0xC) 0x1;
  Alcotest.(check bool) "acked" false (Sb_mem.Intc.asserted intc);
  Alcotest.(check int) "delivered count" 1 (Sb_mem.Intc.irq_delivered intc)

let test_timer_fires () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.timer_base in
  let intc = machine.Sb_sim.Machine.intc in
  Sb_mem.Bus.write32 bus (base + 0x4) 100;
  (* compare *)
  Sb_mem.Bus.write32 bus (base + 0x8) 1;
  (* irq enable *)
  Sb_mem.Bus.write32 bus (base + 0x4) 100;
  (* re-arm after enabling *)
  Sb_mem.Timer.advance machine.Sb_sim.Machine.timer 50;
  Alcotest.(check bool) "not yet" false (Sb_mem.Intc.pending intc land 2 <> 0);
  Sb_mem.Timer.advance machine.Sb_sim.Machine.timer 50;
  Alcotest.(check bool) "fired" true (Sb_mem.Intc.pending intc land 2 <> 0);
  (* ack at the interrupt controller, then confirm the timer is one-shot *)
  Sb_mem.Bus.write32 bus (Sb_sim.Machine.Map.intc_base + 0xC) 2;
  Sb_mem.Timer.advance machine.Sb_sim.Machine.timer 1000;
  Alcotest.(check bool) "one-shot" true (Sb_mem.Intc.pending intc land 2 = 0)

let test_devid () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.devid_base in
  Alcotest.(check int) "id" Sb_mem.Devid.id_value (Sb_mem.Bus.read32 bus base);
  Sb_mem.Bus.write32 bus (base + 4) 0x1234;
  Alcotest.(check int) "scratch" 0x1234 (Sb_mem.Bus.read32 bus (base + 4));
  Sb_mem.Bus.write32 bus (base + 8) 1;
  Alcotest.(check int) "led writes" 1 (Sb_mem.Devid.led_writes machine.Sb_sim.Machine.devid);
  Alcotest.(check bool) "access count grows" true
    (Sb_mem.Devid.access_count machine.Sb_sim.Machine.devid >= 4)

let test_benchdev_phases () =
  let t = ref 0. in
  let machine = Sb_sim.Machine.create ~ram_size:4096 ~now:(fun () -> !t) () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.bench_base in
  let bd = machine.Sb_sim.Machine.benchdev in
  Sb_mem.Benchdev.set_iters bd 500;
  Alcotest.(check int) "iters readable" 500 (Sb_mem.Bus.read32 bus (base + 0xC));
  t := 1.0;
  Sb_mem.Bus.write32 bus base 1;
  t := 3.5;
  Sb_mem.Bus.write32 bus base 2;
  (match Sb_mem.Benchdev.kernel_seconds bd with
  | Some s -> Alcotest.(check (float 1e-9)) "kernel time" 2.5 s
  | None -> Alcotest.fail "no kernel time");
  Sb_mem.Bus.write32 bus (base + 0x8) 7;
  Sb_mem.Bus.write32 bus (base + 0x8) 3;
  Alcotest.(check int) "opcount" 10 (Sb_mem.Benchdev.op_count bd);
  Sb_mem.Bus.write32 bus (base + 0x4) 0;
  Alcotest.(check bool) "exited" true (Sb_mem.Benchdev.exited bd)

let test_bus_subword_device () =
  let machine = make_machine () in
  let bus = machine.Sb_sim.Machine.bus in
  let base = Sb_sim.Machine.Map.devid_base in
  (* byte write into SCRATCH merges with the register *)
  Sb_mem.Bus.write32 bus (base + 4) 0xAABBCCDD;
  Sb_mem.Bus.write8 bus (base + 4) 0x11;
  Alcotest.(check int) "rmw byte" 0xAABBCC11 (Sb_mem.Bus.read32 bus (base + 4));
  Alcotest.(check int) "byte read" 0xBB (Sb_mem.Bus.read8 bus (base + 6))

let () =
  Alcotest.run "sb_mem"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "rw" `Quick test_phys_mem_rw;
          Alcotest.test_case "bounds" `Quick test_phys_mem_bounds;
          Alcotest.test_case "word recomposition" `Quick
            test_phys_mem_word_recomposition;
          Alcotest.test_case "halfword recomposition" `Quick
            test_phys_mem_halfword_recomposition;
          Alcotest.test_case "bounds boundary sweep" `Quick
            test_phys_mem_bounds_boundary;
          Alcotest.test_case "unsafe accessor parity" `Quick
            test_phys_mem_unsafe_parity;
          Alcotest.test_case "load/blit" `Quick test_phys_mem_load;
        ] );
      ( "bus",
        [
          Alcotest.test_case "ram dispatch" `Quick test_bus_ram_dispatch;
          Alcotest.test_case "fault on hole" `Quick test_bus_fault;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "subword device access" `Quick test_bus_subword_device;
        ] );
      ( "devices",
        [
          Alcotest.test_case "uart" `Quick test_uart;
          Alcotest.test_case "intc softint" `Quick test_intc_softint;
          Alcotest.test_case "timer" `Quick test_timer_fires;
          Alcotest.test_case "devid" `Quick test_devid;
          Alcotest.test_case "benchdev" `Quick test_benchdev_phases;
        ] );
    ]
