(* Tests for the experiment/reporting layer (quick configuration). *)

let config = Sb_report.Experiments.quick_config

let contains haystack needle =
  let n = String.length needle in
  let rec loop i =
    if i + n > String.length haystack then false
    else String.sub haystack i n = needle || loop (i + 1)
  in
  loop 0

let test_spec_density () =
  let d = Sb_report.Spec_density.measure ~iters:6 () in
  Alcotest.(check bool) "instructions counted" true (Sb_report.Spec_density.insns d > 10_000);
  let density name = Sb_report.Spec_density.density d ~bench_name:name in
  (* structurally required relations on the aggregated workload stream *)
  Alcotest.(check bool) "intra direct common" true (density "Intra-Page Direct" > 0.01);
  Alcotest.(check bool) "undef never occurs" true (density "Undefined Instruction" = 0.);
  Alcotest.(check bool) "tlb flush never occurs" true (density "TLB Flush" = 0.);
  Alcotest.(check bool) "syscalls rare but present" true
    (density "System Call" > 0. && density "System Call" < 0.001);
  Alcotest.(check bool) "faults present (paging)" true (density "Data Access Fault" > 0.);
  Alcotest.(check bool) "irqs present (timer)" true
    (density "External Software Interrupt" > 0.);
  Alcotest.(check bool) "io present (console)" true (density "Memory Mapped Device" > 0.);
  Alcotest.(check bool) "unknown name is nan" true
    (Float.is_nan (density "No Such Benchmark"))

let test_fig3_structure () =
  let out = Sb_report.Experiments.fig3 ~config () in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.Simbench.Bench.name ^ " row present")
        true
        (contains out b.Simbench.Bench.name))
    Simbench.Suite.all;
  Alcotest.(check bool) "dagger marker" true (contains out "+")

let test_fig4_structure () =
  let out = Sb_report.Experiments.fig4 () in
  List.iter
    (fun name -> Alcotest.(check bool) (name ^ " column") true (contains out name))
    [ "QEMU-DBT"; "SimIt-ARM"; "Gem5"; "QEMU-KVM"; "Hardware" ];
  Alcotest.(check bool) "DBT row" true (contains out "Threaded Code");
  Alcotest.(check bool) "KVM hypercall" true (contains out "Hypercall")

let test_fig5_structure () =
  let out = Sb_report.Experiments.fig5 () in
  Alcotest.(check bool) "mentions OCaml host" true (contains out "OCaml")

let test_fig2_and_8_structure () =
  let out = Sb_report.Experiments.fig2 ~config () in
  Alcotest.(check bool) "sjeng series" true (contains out "sjeng");
  Alcotest.(check bool) "mcf series" true (contains out "mcf");
  Alcotest.(check bool) "all versions" true
    (List.for_all (fun v -> contains out v) Sb_dbt.Version.names);
  Alcotest.(check bool) "baseline row is 1.000" true (contains out "1.000");
  let out8 = Sb_report.Experiments.fig8 ~config () in
  Alcotest.(check bool) "SPEC series" true (contains out8 "SPEC");
  Alcotest.(check bool) "SimBench series" true (contains out8 "SimBench")

let test_suite_times_memoized () =
  let t0 = Unix.gettimeofday () in
  let a =
    Sb_report.Experiments.suite_times_for_version ~arch:Sb_isa.Arch_sig.Sba ~config
      Sb_dbt.Config.baseline
  in
  let first = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let b =
    Sb_report.Experiments.suite_times_for_version ~arch:Sb_isa.Arch_sig.Sba ~config
      Sb_dbt.Config.baseline
  in
  let second = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "same data" true (a == b);
  Alcotest.(check bool) "memo hit is instant" true (second < first /. 2. || second < 0.001);
  Alcotest.(check int) "covers the suite" 18 (List.length a)

let () =
  Alcotest.run "sb_report"
    [
      ( "density",
        [ Alcotest.test_case "spec densities" `Quick test_spec_density ] );
      ( "figures",
        [
          Alcotest.test_case "fig3" `Quick test_fig3_structure;
          Alcotest.test_case "fig4" `Quick test_fig4_structure;
          Alcotest.test_case "fig5" `Quick test_fig5_structure;
          Alcotest.test_case "fig2/fig8" `Quick test_fig2_and_8_structure;
          Alcotest.test_case "memoization" `Quick test_suite_times_memoized;
        ] );
    ]
