(* Tests for the developer tools: the differential verifier and the
   debugger. *)

module V = Sb_verify.Verify

let test_verify_agreement () =
  List.iter
    (fun arch ->
      let divergences =
        V.random_sweep ~arch ~engines:(V.default_engines arch) ~seeds:6 ()
      in
      Alcotest.(check int)
        (Sb_isa.Arch_sig.arch_id_name arch ^ " no divergences")
        0
        (List.length divergences))
    [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

(* A deliberately broken engine must be caught. *)
module Broken : Sb_sim.Engine.ENGINE = struct
  module Good = Sb_interp.Interp.Make (Sb_arch_sba.Arch)

  let name = "broken"
  let features = []

  let run ?max_insns machine =
    let result = Good.run ?max_insns machine in
    (* sabotage: corrupt a register after the run *)
    machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs.(3) <-
      machine.Sb_sim.Machine.cpu.Sb_sim.Cpu.regs.(3) + 1;
    result
end

let test_verify_catches_bugs () =
  let arch = Sb_isa.Arch_sig.Sba in
  let program = V.random_program ~arch ~seed:7 () in
  match
    V.compare_engines
      ~engines:[ Simbench.Engines.interp arch; (module Broken) ]
      ~nregs:14 program
  with
  | Ok _ -> Alcotest.fail "the broken engine must be detected"
  | Error d ->
    Alcotest.(check string) "names the culprit" "broken" d.V.diverging_engine;
    Alcotest.(check bool) "explains" true (String.length d.V.detail > 0)

let test_verify_outcome_fields () =
  let arch = Sb_isa.Arch_sig.Sba in
  let program = V.random_program ~arch ~seed:11 () in
  let o = V.run_outcome ~engine:(Simbench.Engines.interp arch) program in
  Alcotest.(check bool) "halted" true o.V.halted;
  Alcotest.(check int) "all registers" 16 (List.length o.V.regs);
  Alcotest.(check bool) "counters present" true
    (List.mem_assoc "Insns" o.V.counters);
  Alcotest.(check int) "digest length" 16 (String.length o.V.memory_digest)

(* ------------------------------------------------------------------ *)

let debug_setup () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let platform = Simbench.Platform.sbp_ref in
  let program =
    Simbench.Rt.program ~support ~platform ~bench:Simbench.Suite.system_call
  in
  let machine = Simbench.Platform.machine platform () in
  Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev 5;
  Sb_sim.Machine.load_program machine program;
  let dbg =
    Sb_sim.Debugger.create
      ~engine:(Simbench.Engines.interp arch)
      ~arch:(module Sb_arch_sba.Arch)
      machine
  in
  (dbg, program)

let test_debugger_breakpoint () =
  let dbg, program = debug_setup () in
  let kloop = Sb_asm.Program.symbol program "rt_kloop" in
  Sb_sim.Debugger.add_breakpoint dbg kloop;
  (match Sb_sim.Debugger.continue_ dbg with
  | Sb_sim.Debugger.Breakpoint addr -> Alcotest.(check int) "breaks at kloop" kloop addr
  | _ -> Alcotest.fail "expected breakpoint");
  Alcotest.(check int) "pc at breakpoint" kloop (Sb_sim.Debugger.pc dbg);
  Alcotest.(check bool) "made progress" true
    (Sb_sim.Debugger.instructions_retired dbg > 100);
  (* stepping past the breakpoint works *)
  (match Sb_sim.Debugger.step dbg with
  | Sb_sim.Debugger.Stepped -> ()
  | _ -> Alcotest.fail "single step");
  Alcotest.(check bool) "pc advanced" true (Sb_sim.Debugger.pc dbg <> kloop);
  (* continuing hits the loop head again on the next iteration *)
  match Sb_sim.Debugger.continue_ dbg with
  | Sb_sim.Debugger.Breakpoint addr -> Alcotest.(check int) "loops" kloop addr
  | _ -> Alcotest.fail "expected second hit"

let test_debugger_runs_to_halt () =
  let dbg, _ = debug_setup () in
  (match Sb_sim.Debugger.continue_ dbg with
  | Sb_sim.Debugger.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check bool) "retired plenty" true
    (Sb_sim.Debugger.instructions_retired dbg > 200)

let test_debugger_disasm_and_regs () =
  let dbg, _ = debug_setup () in
  ignore (Sb_sim.Debugger.step ~n:3 dbg);
  let text = Sb_sim.Debugger.disassemble_here ~count:2 dbg in
  Alcotest.(check int) "two lines" 2
    (List.length (String.split_on_char '\n' text));
  let regs = Sb_sim.Debugger.dump_registers dbg in
  Alcotest.(check bool) "register dump mentions pc" true
    (String.length regs > 0 && String.sub regs 0 3 = "pc=")

let test_debugger_breakpoint_management () =
  let dbg, _ = debug_setup () in
  Sb_sim.Debugger.add_breakpoint dbg 0x100;
  Sb_sim.Debugger.add_breakpoint dbg 0x100;
  Sb_sim.Debugger.add_breakpoint dbg 0x200;
  Alcotest.(check int) "dedup" 2 (List.length (Sb_sim.Debugger.breakpoints dbg));
  Sb_sim.Debugger.remove_breakpoint dbg 0x100;
  Alcotest.(check (list int)) "removed" [ 0x200 ] (Sb_sim.Debugger.breakpoints dbg)

let () =
  Alcotest.run "tools"
    [
      ( "verify",
        [
          Alcotest.test_case "agreement" `Quick test_verify_agreement;
          Alcotest.test_case "catches bugs" `Quick test_verify_catches_bugs;
          Alcotest.test_case "outcome fields" `Quick test_verify_outcome_fields;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "breakpoint" `Quick test_debugger_breakpoint;
          Alcotest.test_case "run to halt" `Quick test_debugger_runs_to_halt;
          Alcotest.test_case "disasm and registers" `Quick test_debugger_disasm_and_regs;
          Alcotest.test_case "breakpoint management" `Quick test_debugger_breakpoint_management;
        ] );
    ]
