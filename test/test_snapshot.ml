(* Tests for the unified architectural snapshot and checkpointed
   fast-forward: a run resumed from a snapshot must be indistinguishable
   from one that ran cold — identical kernel_insns, identical console
   output, identical final machine state — on every engine and both guest
   ISAs; corrupt checkpoints must fail loudly (or be evicted) rather than
   mis-restore; and the debugger's snapshot/restore must rewind exactly. *)

module H = Simbench.Harness
module Checkpoint = Simbench.Checkpoint
module Snapshot = Sb_sim.Snapshot
module Cache = Sb_jobs.Cache
module W = Sb_workloads.Workloads

let scale = 400_000 (* tiny iteration counts: correctness, not timing *)

let archs = [ Sb_isa.Arch_sig.Sba; Sb_isa.Arch_sig.Vlx ]

let arch_name = function Sb_isa.Arch_sig.Sba -> "sba" | Sb_isa.Arch_sig.Vlx -> "vlx"

let engines_for arch =
  [
    ("interp", Simbench.Engines.interp arch);
    ("dbt", Simbench.Engines.dbt arch);
    ("detailed", Simbench.Engines.detailed arch);
    ("virt", Simbench.Engines.virt arch);
  ]

(* Benchmarks chosen to cover distinct snapshot-relevant state: plain
   compute, IRQ delivery through the intc, and (omnetpp) timer-interrupt
   pacing, where any tick drift between a cold and a resumed run would
   move interrupts and change kernel_insns. *)
let equivalence_benches =
  [
    (Simbench.Suite.hot_memory_access, None);
    (Simbench.Suite.external_software_interrupt, None);
    ((Option.get (W.find "omnetpp")).W.bench, Some 16);
  ]

(* ------------------------------------------------------------------ *)
(* Cold vs fast-forwarded runs through the harness                      *)
(* ------------------------------------------------------------------ *)

let test_fast_forward_equivalence () =
  List.iter
    (fun arch ->
      let support = Simbench.Engines.support arch in
      List.iter
        (fun (bench, iters) ->
          List.iter
            (fun (ename, engine) ->
              let label =
                Printf.sprintf "%s/%s/%s" (arch_name arch)
                  bench.Simbench.Bench.name ename
              in
              let cold = H.run ~scale ?iters ~support ~engine bench in
              let warm =
                H.run ~scale ?iters ~switch_at:Checkpoint.Kernel_phase
                  ~support ~engine bench
              in
              Alcotest.(check int)
                (label ^ ": kernel_insns")
                cold.H.kernel_insns warm.H.kernel_insns;
              Alcotest.(check string)
                (label ^ ": uart output")
                cold.H.result.Sb_sim.Run_result.uart_output
                warm.H.result.Sb_sim.Run_result.uart_output;
              Alcotest.(check int)
                (label ^ ": tested ops")
                cold.H.result.Sb_sim.Run_result.tested_ops
                warm.H.result.Sb_sim.Run_result.tested_ops)
            (engines_for arch))
        equivalence_benches)
    archs

(* Switching at an instruction count exercises the overshoot crediting:
   whether the count lands in setup or inside the kernel, the carried
   [insns_into_kernel] must make kernel_insns match a cold run. *)
let test_at_insns_equivalence () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let bench = Simbench.Suite.system_call in
  List.iter
    (fun (ename, engine) ->
      let cold = H.run ~scale ~support ~engine bench in
      List.iter
        (fun n ->
          let warm =
            H.run ~scale ~switch_at:(Checkpoint.At_insns n) ~support ~engine
              bench
          in
          Alcotest.(check int)
            (Printf.sprintf "%s at insn %d: kernel_insns" ename n)
            cold.H.kernel_insns warm.H.kernel_insns)
        [ 200; 2_000 ])
    (engines_for arch)

(* ------------------------------------------------------------------ *)
(* Final-state identity (snapshot digests of the halted machine)        *)
(* ------------------------------------------------------------------ *)

let machine_for ~support ~bench ~iters =
  let platform = Simbench.Platform.sbp_ref in
  let program = Simbench.Rt.program ~support ~platform ~bench in
  let machine = Simbench.Platform.machine platform () in
  Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev iters;
  Sb_sim.Machine.load_program machine program;
  machine

let run_to_halt ~engine machine =
  let result = Sb_sim.Engine.run engine machine in
  (match result.Sb_sim.Run_result.stop with
  | Sb_sim.Run_result.Halted -> ()
  | s ->
    Alcotest.failf "run did not halt: %s"
      (Format.asprintf "%a" Sb_sim.Run_result.pp_stop s));
  result

let test_final_state_identity () =
  List.iter
    (fun arch ->
      let support = Simbench.Engines.support arch in
      let bench = Simbench.Suite.memory_mapped_device in
      let iters = 12 in
      List.iter
        (fun (ename, engine) ->
          let label = Printf.sprintf "%s/%s" (arch_name arch) ename in
          (* mirror the harness's granularity rule: the DBT fast-forwards
             under itself, per-insn engines under the interpreter *)
          let setup_engine =
            if ename = "dbt" then engine else Simbench.Engines.interp arch
          in
          let cold_m = machine_for ~support ~bench ~iters in
          let _ = run_to_halt ~engine cold_m in
          let cold = Snapshot.save cold_m in
          let warm_m = machine_for ~support ~bench ~iters in
          let (_ : Snapshot.t) =
            Checkpoint.fast_forward ~setup_engine
              ~point:Checkpoint.Kernel_phase ~key:"unused" warm_m
          in
          let _ = run_to_halt ~engine warm_m in
          let warm = Snapshot.save warm_m in
          Alcotest.(check string)
            (label ^ ": final state")
            (Snapshot.digest cold) (Snapshot.digest warm))
        (engines_for arch))
    archs

(* A checkpoint is engine-portable: an interp-produced snapshot restored
   into the DBT (different retirement granularity) still runs to the same
   architectural outcome — only the free-running timer's final residue,
   which tracks the DBT's block-aligned flush instants, may differ. *)
let test_cross_engine_restore () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let bench = Simbench.Suite.memory_mapped_device in
  let iters = 12 in
  let engine = Simbench.Engines.dbt arch in
  let normalized_digest snap =
    let d = snap.Snapshot.s_devices in
    Snapshot.digest
      {
        snap with
        Snapshot.s_devices =
          {
            d with
            Snapshot.s_timer =
              { d.Snapshot.s_timer with Sb_mem.Timer.s_count = 0 };
          };
      }
  in
  let cold_m = machine_for ~support ~bench ~iters in
  let cold_r = run_to_halt ~engine cold_m in
  let warm_m = machine_for ~support ~bench ~iters in
  let (_ : Snapshot.t) =
    Checkpoint.fast_forward
      ~setup_engine:(Simbench.Engines.interp arch)
      ~point:Checkpoint.Kernel_phase ~key:"unused" warm_m
  in
  let warm_r = run_to_halt ~engine warm_m in
  Alcotest.(check string) "uart output"
    cold_r.Sb_sim.Run_result.uart_output warm_r.Sb_sim.Run_result.uart_output;
  Alcotest.(check int) "exit code" cold_r.Sb_sim.Run_result.exit_code
    warm_r.Sb_sim.Run_result.exit_code;
  Alcotest.(check string) "final state (timer residue aside)"
    (normalized_digest (Snapshot.save cold_m))
    (normalized_digest (Snapshot.save warm_m))

(* ------------------------------------------------------------------ *)
(* Restore under an armed fault plan                                    *)
(* ------------------------------------------------------------------ *)

(* The bus-error injector keys off the architectural MMIO access ordinal,
   which the snapshot carries: a faulted run split at an arbitrary point
   must inject the same Nth accesses and converge to the cold run's final
   state. *)
let test_restore_under_fault_plan () =
  let arch = Sb_isa.Arch_sig.Sba in
  let engine = Simbench.Engines.interp arch in
  let plan = Sb_fault.Plan.generate ~seed:5 in
  let program = Sb_fault.Fault.program ~arch plan in
  let fresh () =
    let m = Simbench.Platform.machine Simbench.Platform.sbp_ref () in
    Sb_sim.Machine.load_program m program;
    Sb_fault.Fault.arm plan m;
    m
  in
  let cold_m = fresh () in
  let cold_r = Sb_sim.Engine.run engine cold_m in
  let mid_m = fresh () in
  let (_ : Sb_sim.Run_result.t) =
    Sb_sim.Engine.run engine ~max_insns:200 mid_m
  in
  let snap = Snapshot.save mid_m in
  let resumed_m = Simbench.Platform.machine Simbench.Platform.sbp_ref () in
  Sb_sim.Machine.load_program resumed_m program;
  Sb_fault.Fault.arm plan resumed_m;
  Snapshot.restore snap resumed_m;
  let resumed_r = Sb_sim.Engine.run engine resumed_m in
  Alcotest.(check string) "same stop reason"
    (Format.asprintf "%a" Sb_sim.Run_result.pp_stop cold_r.Sb_sim.Run_result.stop)
    (Format.asprintf "%a" Sb_sim.Run_result.pp_stop resumed_r.Sb_sim.Run_result.stop);
  Alcotest.(check string) "same final state under faults"
    (Snapshot.digest (Snapshot.save cold_m))
    (Snapshot.digest (Snapshot.save resumed_m))

(* ------------------------------------------------------------------ *)
(* Corruption: tampered snapshots and damaged checkpoint files          *)
(* ------------------------------------------------------------------ *)

let tmp_counter = ref 0

let tmp_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sb_snapshot_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  Cache.mkdir_p d;
  d

let small_snapshot () =
  let support = Simbench.Engines.support Sb_isa.Arch_sig.Sba in
  let m =
    machine_for ~support ~bench:Simbench.Suite.hot_memory_access ~iters:10
  in
  let (_ : Sb_sim.Run_result.t) =
    Sb_sim.Engine.run (Simbench.Engines.interp Sb_isa.Arch_sig.Sba)
      ~max_insns:100 m
  in
  (m, Snapshot.save m)

let expect_corrupt label f =
  match f () with
  | () -> Alcotest.failf "%s: restore of tampered snapshot succeeded" label
  | exception Snapshot.Corrupt _ -> ()

let test_tampered_snapshot_rejected () =
  let m, snap = small_snapshot () in
  (* wrong schema *)
  expect_corrupt "schema" (fun () ->
      Snapshot.restore { snap with Snapshot.s_schema = 999 } m);
  (* flipped byte in a page, digest left stale *)
  (match snap.Snapshot.s_pages with
  | (idx, data) :: rest ->
    let b = Bytes.of_string data in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
    expect_corrupt "page tamper" (fun () ->
        Snapshot.restore
          { snap with Snapshot.s_pages = (idx, Bytes.to_string b) :: rest }
          m)
  | [] -> Alcotest.fail "snapshot has no pages");
  (* restore into a machine with different RAM *)
  let mini = Simbench.Platform.machine Simbench.Platform.sbp_mini () in
  expect_corrupt "ram size" (fun () -> Snapshot.restore snap mini);
  (* the untampered snapshot still restores *)
  Snapshot.restore snap m

let checkpoint_file dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 8 && String.sub f 0 8 = "sb_ckpt_")
  with
  | [ f ] -> Filename.concat dir f
  | l -> Alcotest.failf "expected one checkpoint file, found %d" (List.length l)

let test_truncated_checkpoint_evicted () =
  let dir = tmp_dir () in
  let store = Checkpoint.open_store ~dir in
  let _, snap = small_snapshot () in
  Checkpoint.save store ~key:"ckpt_truncation_test" snap;
  let file = checkpoint_file dir in
  Alcotest.(check bool) "hit before truncation" true
    (Checkpoint.load store ~key:"ckpt_truncation_test" <> None);
  (* truncate the file mid-payload *)
  let len = (Unix.stat file).Unix.st_size in
  let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len / 2);
  Unix.close fd;
  Cache.reset_evictions ();
  (* the first handle already validated and memoized this snapshot, so it
     keeps serving it; the truncation must be caught by the next process —
     a fresh handle — and evicted *)
  Alcotest.(check bool) "memo still serves first handle" true
    (Checkpoint.load store ~key:"ckpt_truncation_test" <> None);
  let store2 = Checkpoint.open_store ~dir in
  Alcotest.(check (option reject)) "truncated load misses" None
    (Option.map ignore (Checkpoint.load store2 ~key:"ckpt_truncation_test"));
  Alcotest.(check bool) "eviction counted" true (Cache.evictions () >= 1);
  Alcotest.(check bool) "file removed" false (Sys.file_exists file)

let test_create_sweeps_corrupt_checkpoints () =
  let dir = tmp_dir () in
  (* a damaged checkpoint left behind by a previous crash *)
  let junk = Filename.concat dir "sb_ckpt_00deadbeef.cache" in
  let oc = open_out_bin junk in
  output_string oc "not a marshalled checkpoint";
  close_out oc;
  Cache.reset_evictions ();
  let store = Checkpoint.open_store ~dir in
  Alcotest.(check bool) "junk swept at create" false (Sys.file_exists junk);
  Alcotest.(check bool) "sweep counted as eviction" true
    (Cache.evictions () >= 1);
  (* a healthy checkpoint written after the sweep survives the next one *)
  let _, snap = small_snapshot () in
  Checkpoint.save store ~key:"ckpt_sweep_survivor" snap;
  let store2 = Checkpoint.open_store ~dir in
  Alcotest.(check bool) "healthy checkpoint survives" true
    (Checkpoint.load store2 ~key:"ckpt_sweep_survivor" <> None)

let count_checkpoints dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8 && String.sub f 0 8 = "sb_ckpt_")
  |> List.length

let test_store_roundtrip_and_sharing () =
  let dir = tmp_dir () in
  let store = Checkpoint.open_store ~dir in
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let bench = Simbench.Suite.coprocessor_access in
  let run engine =
    H.run ~scale ~switch_at:Checkpoint.Kernel_phase ~checkpoints:store
      ~support ~engine bench
  in
  let cold engine = H.run ~scale ~support ~engine bench in
  (* the interp producer writes the per-insn checkpoint... *)
  let first = run (Simbench.Engines.interp arch) in
  let file = checkpoint_file dir in
  let mtime = (Unix.stat file).Unix.st_mtime in
  Alcotest.(check int) "producer matches cold"
    (cold (Simbench.Engines.interp arch)).H.kernel_insns first.H.kernel_insns;
  (* ...and every other per-insn engine reuses that same warm boot *)
  let second = run (Simbench.Engines.detailed arch) in
  Alcotest.(check int) "still one checkpoint file" 1 (count_checkpoints dir);
  Alcotest.(check bool) "checkpoint reused, not rewritten" true
    ((Unix.stat file).Unix.st_mtime = mtime);
  Alcotest.(check int) "consumer matches cold"
    (cold (Simbench.Engines.detailed arch)).H.kernel_insns
    second.H.kernel_insns;
  (* the DBT fast-forwards under itself, so it gets its own checkpoint *)
  let third = run (Simbench.Engines.dbt arch) in
  Alcotest.(check int) "dbt adds its own checkpoint" 2 (count_checkpoints dir);
  Alcotest.(check int) "dbt matches cold"
    (cold (Simbench.Engines.dbt arch)).H.kernel_insns third.H.kernel_insns;
  (* and a repeat of the dbt cell is a pure hit *)
  let fourth = run (Simbench.Engines.dbt arch) in
  Alcotest.(check int) "repeat hits" third.H.kernel_insns fourth.H.kernel_insns;
  Alcotest.(check int) "no new files on repeat" 2 (count_checkpoints dir)

(* ------------------------------------------------------------------ *)
(* Verify snapshot-diff                                                 *)
(* ------------------------------------------------------------------ *)

(* compare_engines with checkpoints: full machine state must agree at
   every checkpoint engines reach at the same retired count, and the
   summed per-segment counters must equal an unsegmented run's. *)
let test_verify_snapshot_diff () =
  let arch = Sb_isa.Arch_sig.Sba in
  let program = Sb_verify.Verify.random_program ~arch ~seed:3 () in
  let engines =
    [
      Simbench.Engines.interp arch;
      Simbench.Engines.detailed arch;
      Simbench.Engines.virt arch;
      Simbench.Engines.dbt arch;
    ]
  in
  let checkpoints = [ 100; 300; 1_000 ] in
  match
    Sb_verify.Verify.compare_engines ~engines ~checkpoints
      ~nregs:(Sb_verify.Verify.nregs_of arch) program
  with
  | Error d ->
    Alcotest.failf "%s vs %s: %s" d.Sb_verify.Verify.reference_engine
      d.Sb_verify.Verify.diverging_engine d.Sb_verify.Verify.detail
  | Ok o ->
    Alcotest.(check bool) "reference halted" true o.Sb_verify.Verify.halted;
    Alcotest.(check bool) "mid-flight snapshots were taken" true
      (List.length o.Sb_verify.Verify.snapshots >= 1);
    (* segmentation must not change the reported counters *)
    let unsegmented =
      Sb_verify.Verify.run_outcome ~engine:(Simbench.Engines.interp arch)
        program
    in
    Alcotest.(check (list (pair string int)))
      "segmented counters match unsegmented"
      unsegmented.Sb_verify.Verify.counters o.Sb_verify.Verify.counters

(* ------------------------------------------------------------------ *)
(* Switch-point parsing                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_point () =
  let ok s p =
    match Checkpoint.parse_point s with
    | Ok p' -> Alcotest.(check string) s (Checkpoint.point_to_string p)
                 (Checkpoint.point_to_string p')
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "kernel" Checkpoint.Kernel_phase;
  ok "phase:kernel" Checkpoint.Kernel_phase;
  ok "insn:5000" (Checkpoint.At_insns 5000);
  ok "5000" (Checkpoint.At_insns 5000);
  List.iter
    (fun s ->
      match Checkpoint.parse_point s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "xyz"; "insn:-3"; "insn:zero"; "0"; "-7"; "phase:cleanup" ]

(* ------------------------------------------------------------------ *)
(* Debugger snapshot/restore                                            *)
(* ------------------------------------------------------------------ *)

let test_debugger_snapshot_restore () =
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  let m =
    machine_for ~support ~bench:Simbench.Suite.system_call ~iters:5
  in
  let dbg =
    Sb_sim.Debugger.create
      ~engine:(Simbench.Engines.interp arch)
      ~arch:(module Sb_arch_sba.Arch)
      m
  in
  let step n =
    match Sb_sim.Debugger.step ~n dbg with
    | Sb_sim.Debugger.Stepped -> ()
    | _ -> Alcotest.fail "unexpected stop while stepping"
  in
  step 50;
  let snap = Sb_sim.Debugger.snapshot dbg in
  Alcotest.(check int) "snapshot records retirement" 50 (Snapshot.insns snap);
  step 40;
  let digest_at_90 = Snapshot.digest (Sb_sim.Debugger.snapshot dbg) in
  Sb_sim.Debugger.restore dbg snap;
  Alcotest.(check int) "rewound retirement" 50
    (Sb_sim.Debugger.instructions_retired dbg);
  step 40;
  Alcotest.(check string) "replayed steps reconverge" digest_at_90
    (Snapshot.digest (Sb_sim.Debugger.snapshot dbg))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "snapshot"
    [
      ( "equivalence",
        [
          Alcotest.test_case "fast-forward = cold (all engines, both ISAs)"
            `Slow test_fast_forward_equivalence;
          Alcotest.test_case "at-insns switch credits overshoot" `Slow
            test_at_insns_equivalence;
          Alcotest.test_case "final machine state identical" `Slow
            test_final_state_identity;
          Alcotest.test_case "cross-engine restore is portable" `Slow
            test_cross_engine_restore;
          Alcotest.test_case "restore under armed fault plan" `Quick
            test_restore_under_fault_plan;
          Alcotest.test_case "verify snapshot-diff at checkpoints" `Quick
            test_verify_snapshot_diff;
        ] );
      ( "store",
        [
          Alcotest.test_case "tampered snapshot rejected" `Quick
            test_tampered_snapshot_rejected;
          Alcotest.test_case "truncated checkpoint evicted" `Quick
            test_truncated_checkpoint_evicted;
          Alcotest.test_case "create sweeps corrupt checkpoints" `Quick
            test_create_sweeps_corrupt_checkpoints;
          Alcotest.test_case "one warm boot shared across engines" `Slow
            test_store_roundtrip_and_sharing;
          Alcotest.test_case "switch-point parsing" `Quick test_parse_point;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "snapshot/restore rewinds exactly" `Quick
            test_debugger_snapshot_restore;
        ] );
    ]
