(* SimBench benchmark harness.

   Usage:
     bench/main.exe                 - regenerate every paper table/figure
     bench/main.exe fig3 fig7       - selected experiments only
     bench/main.exe --all           - the combined report (one prefetch pass
                                      over the whole version sweep, then
                                      every figure)
     bench/main.exe --quick [...]   - cheap settings (CI smoke)
     bench/main.exe -j N            - run independent sweep cells in N
                                      forked workers (-j 1 is today's
                                      sequential path, bit for bit)
     bench/main.exe --cache DIR     - persist measured cells to DIR, keyed
                                      by a digest of the engine knobs /
                                      arch / workload / iteration counts
     bench/main.exe --json DIR      - write BENCH_<experiment>.json per
                                      experiment with the raw cells
     bench/main.exe --deadline SEC  - per-cell wall-clock budget: workers
                                      still running after SEC seconds are
                                      killed and the cell is reported with
                                      status "timeout" (run continues)
     bench/main.exe --retries N     - re-run crashed cells up to N times
                                      with exponential backoff
     bench/main.exe --insn-budget N - watchdog: any engine run past N
                                      guest instructions stops (runaway
                                      cells fail instead of spinning)
     bench/main.exe --switch-at P   - checkpointed fast-forward: run (or
                                      restore) each cell's setup phase up
                                      to P ("kernel" or "insn:N") and
                                      start the timed engine there; pair
                                      with --cache DIR to share one warm
                                      boot across the grid and repeats
     bench/main.exe --bechamel      - Bechamel micro-benchmarks of the
                                      engine hot paths (one Test per suite
                                      category, plus workloads)

   Every experiment prints the same rows/series the paper reports; see
   EXPERIMENTS.md for the expected shapes and the recorded run,
   docs/parallel.md for the scheduler and docs/robustness.md for the
   failure-handling model. *)

(* ablation configs share the scale/repeats of the main experiments *)
let abl (config : Sb_report.Experiments.config) =
  {
    Sb_report.Ablations.scale = config.Sb_report.Experiments.scale;
    repeats = config.Sb_report.Experiments.repeats;
  }

let experiments =
  [
    ("all", fun config opts -> Sb_report.Experiments.all ~config ~opts ());
    ("fig2", fun config opts -> Sb_report.Experiments.fig2 ~config ~opts ());
    ("fig3", fun config _ -> Sb_report.Experiments.fig3 ~config ());
    ("fig4", fun _ _ -> Sb_report.Experiments.fig4 ());
    ("fig5", fun _ _ -> Sb_report.Experiments.fig5 ());
    ("fig6", fun config opts -> Sb_report.Experiments.fig6 ~config ~opts ());
    ("fig7", fun config opts -> Sb_report.Experiments.fig7 ~config ~opts ());
    ("fig8", fun config opts -> Sb_report.Experiments.fig8 ~config ~opts ());
    ("ext", fun config opts -> Sb_report.Experiments.extensions ~config ~opts ());
    ( "abl-chain",
      fun config opts -> Sb_report.Ablations.chaining ~config:(abl config) ~opts () );
    ( "abl-tlb",
      fun config opts -> Sb_report.Ablations.page_cache ~config:(abl config) ~opts () );
    ( "abl-opt",
      fun config opts -> Sb_report.Ablations.optimiser ~config:(abl config) ~opts () );
    ( "abl-traces",
      fun config opts -> Sb_report.Ablations.traces ~config:(abl config) ~opts () );
    ( "abl-threaded",
      fun config opts -> Sb_report.Ablations.threaded ~config:(abl config) ~opts () );
    ( "abl-vmexit",
      fun config opts -> Sb_report.Ablations.vm_exit ~config:(abl config) ~opts () );
    ( "abl-predecode",
      fun config opts -> Sb_report.Ablations.predecode ~config:(abl config) ~opts () );
    (* excluded from the default run (like "all"): a deliberate
       crash/hang harness check, see docs/robustness.md *)
    ( "synthetic-faults",
      fun _ opts -> Sb_report.Experiments.synthetic_faults ~opts () );
  ]

let default_skip = [ "all"; "synthetic-faults" ]

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                              *)
(* ------------------------------------------------------------------ *)

let json_of_rows ~experiment ~(opts : Sb_report.Experiments.run_opts)
    ~(config : Sb_report.Experiments.config) rows =
  let open Sb_util.Json in
  let cell (r : Sb_report.Experiments.row) =
    Obj
      [
        ("cell", String r.row_cell);
        ("engine", String r.row_engine);
        ("arch", String r.row_arch);
        ("iters", Int r.row_iters);
        ("repeats", Int r.row_repeats);
        ("seconds", Float r.row_seconds);
        ("mean_seconds", Float r.row_mean_seconds);
        ("samples", List (List.map (fun s -> Float s) r.row_samples));
        ("kernel_insns", Int r.row_kernel_insns);
        ( "kernel_perf",
          Obj (List.map (fun (name, n) -> (name, Int n)) r.row_perf) );
        ("status", String r.row_status);
        ("status_note", String r.row_note);
      ]
  in
  Obj
    [
      ("schema", String Sb_regress.Baseline.bench_schema);
      ("experiment", String experiment);
      ("jobs", Int opts.jobs);
      ( "config",
        Obj
          [
            ("scale", Int config.scale);
            ("workload_iters", Int config.workload_iters);
            ("repeats", Int config.repeats);
            ( "switch_at",
              String
                (match config.switch_at with
                | None -> "cold"
                | Some p -> Simbench.Checkpoint.point_to_string p) );
          ] );
      ("cells", List (List.map cell rows));
    ]

let write_json ~dir ~experiment ~opts ~config rows =
  Sb_jobs.Cache.mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" experiment) in
  let oc = open_out path in
  output_string oc (Sb_util.Json.to_string (json_of_rows ~experiment ~opts ~config rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[wrote %s: %d cells]\n%!" path (List.length rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let arch = Sb_isa.Arch_sig.Sba in
  let support = Simbench.Engines.support arch in
  (* iteration counts chosen so the timed kernel dominates the ~20ms of
     per-run machine construction and guest assembly *)
  let run_bench engine bench ~iters =
    Staged.stage (fun () ->
        ignore (Simbench.Harness.run ~iters ~support ~engine bench))
  in
  let engine_test label engine bench ~iters =
    Test.make ~name:label (run_bench engine bench ~iters)
  in
  let dbt = Simbench.Engines.dbt arch in
  let dbt_nofc =
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.front_cache = false }
  in
  let dbt_notrace =
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.trace_threshold = 0 }
  in
  let dbt_closure =
    Simbench.Engines.dbt_configured arch
      { Sb_dbt.Config.default with Sb_dbt.Config.threaded = false }
  in
  let interp = Simbench.Engines.interp arch in
  Test.make_grouped ~name:"simbench"
    [
      Test.make_grouped ~name:"code-generation"
        [
          engine_test "small-blocks/dbt" dbt Simbench.Suite.small_blocks ~iters:2_000;
          engine_test "small-blocks/interp" interp Simbench.Suite.small_blocks
            ~iters:2_000;
        ];
      Test.make_grouped ~name:"control-flow"
        [
          engine_test "intra-direct/dbt" dbt Simbench.Suite.intra_page_direct
            ~iters:100_000;
          (* direct chained loops are exactly what hot traces stitch, so
             this pair isolates the superblock win on the same workload *)
          engine_test "intra-direct/dbt-notrace" dbt_notrace
            Simbench.Suite.intra_page_direct ~iters:100_000;
          (* the same compute-dense loop through the closure backend: this
             pair measures the token-threaded opstream win directly *)
          engine_test "intra-direct/dbt-closure" dbt_closure
            Simbench.Suite.intra_page_direct ~iters:100_000;
          engine_test "intra-direct/interp" interp Simbench.Suite.intra_page_direct
            ~iters:100_000;
          (* indirect branches cannot chain: every taken branch goes through
             block lookup, so this pair isolates the front-cache win *)
          engine_test "intra-indirect/dbt" dbt Simbench.Suite.intra_page_indirect
            ~iters:100_000;
          engine_test "intra-indirect/dbt-nofc" dbt_nofc
            Simbench.Suite.intra_page_indirect ~iters:100_000;
        ];
      Test.make_grouped ~name:"exceptions"
        [
          engine_test "syscall/dbt" dbt Simbench.Suite.system_call ~iters:50_000;
          engine_test "syscall/interp" interp Simbench.Suite.system_call ~iters:50_000;
        ];
      Test.make_grouped ~name:"memory"
        [
          engine_test "hot/dbt" dbt Simbench.Suite.hot_memory_access ~iters:50_000;
          (* threaded vs closure on a load-dominated kernel isolates the
             micro-TLB flat-memory fast path from the dispatch win *)
          engine_test "hot/dbt-closure" dbt_closure Simbench.Suite.hot_memory_access
            ~iters:50_000;
          engine_test "hot/interp" interp Simbench.Suite.hot_memory_access ~iters:50_000;
        ];
      Test.make_grouped ~name:"workloads"
        [
          Test.make ~name:"sjeng/dbt"
            (Staged.stage (fun () ->
                 ignore
                   (Sb_workloads.Workloads.run ~iters:50 ~support ~engine:dbt
                      Sb_workloads.Workloads.sjeng)));
        ];
      (* checkpointed fast-forward on the detailed engine: each cold/ckpt
         pair runs the same cell end to end (machine build, assembly, and
         either setup simulation or checkpoint restore, then the timed
         kernel), so the ratio is the wall-clock win a grid cell sees.
         Setup-heavy cells — high scale, so the kernel is a few hundred
         instructions against a few thousand of setup — are where the
         paper-grid sweeps pay the most per repeat. *)
      (let detailed = Simbench.Engines.detailed arch in
       let store =
         let dir =
           Filename.concat
             (Filename.get_temp_dir_name ())
             (Printf.sprintf "sb-bench-ckpt-%d" (Unix.getpid ()))
         in
         Simbench.Checkpoint.open_store ~dir
       in
       let ckpt_pair name bench ~scale =
         [
           Test.make ~name:(name ^ "/detailed-cold")
             (Staged.stage (fun () ->
                  ignore (Simbench.Harness.run ~scale ~support ~engine:detailed bench)));
           Test.make ~name:(name ^ "/detailed-ckpt")
             (Staged.stage (fun () ->
                  ignore
                    (Simbench.Harness.run ~scale
                       ~switch_at:Simbench.Checkpoint.Kernel_phase
                       ~checkpoints:store ~support ~engine:detailed bench)));
         ]
       in
       (* the workload pair is the setup-heavy case: mcf's graph
          initialization is ~19ms of detailed-engine setup against a
          ~7ms two-pass kernel *)
       let workload_pair name w ~iters =
         [
           Test.make ~name:(name ^ "/detailed-cold")
             (Staged.stage (fun () ->
                  ignore
                    (Sb_workloads.Workloads.run ~iters ~support
                       ~engine:detailed w)));
           Test.make ~name:(name ^ "/detailed-ckpt")
             (Staged.stage (fun () ->
                  ignore
                    (Sb_workloads.Workloads.run ~iters
                       ~switch_at:Simbench.Checkpoint.Kernel_phase
                       ~checkpoints:store ~support ~engine:detailed w)));
         ]
       in
       Test.make_grouped ~name:"checkpoint"
         (workload_pair "mcf" Sb_workloads.Workloads.mcf ~iters:2
         @ workload_pair "sjeng" Sb_workloads.Workloads.sjeng ~iters:2
         @ ckpt_pair "tlb-flush" Simbench.Suite.tlb_flush ~scale:20_000));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Printf.printf "## %s\n" measure;
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-45s %14.2f ns/run\n" name est
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

(* ------------------------------------------------------------------ *)

type cli = {
  mutable quick : bool;
  mutable bechamel : bool;
  mutable all : bool;
  mutable jobs : int;
  mutable repeats : int option;
  mutable json_dir : string option;
  mutable cache_dir : string option;
  mutable deadline : float option;
  mutable retries : int;
  mutable switch_at : Simbench.Checkpoint.point option;
  mutable names : string list; (* reversed *)
}

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--all] [-j N] [--repeats N] [--json DIR]\n\
    \                [--cache DIR] [--deadline SEC] [--retries N]\n\
    \                [--insn-budget N] [--switch-at POINT] [--bechamel]\n\
    \                [experiment ...]";
  exit 2

let parse_args args =
  let cli =
    {
      quick = false;
      bechamel = false;
      all = false;
      jobs = 1;
      repeats = None;
      json_dir = None;
      cache_dir = None;
      deadline = None;
      retries = 0;
      switch_at = None;
      names = [];
    }
  in
  let int_of a v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "%s expects a positive integer, got %S\n" a v;
      usage ()
  in
  let nat_of a v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "%s expects a non-negative integer, got %S\n" a v;
      usage ()
  in
  let float_of a v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ ->
      Printf.eprintf "%s expects a positive number, got %S\n" a v;
      usage ()
  in
  let rec go = function
    | [] -> cli
    | "--quick" :: rest -> cli.quick <- true; go rest
    | "--bechamel" :: rest -> cli.bechamel <- true; go rest
    | "--all" :: rest -> cli.all <- true; go rest
    | "-j" :: v :: rest -> cli.jobs <- int_of "-j" v; go rest
    | "--repeats" :: v :: rest ->
      cli.repeats <- Some (int_of "--repeats" v);
      go rest
    | "--json" :: v :: rest -> cli.json_dir <- Some v; go rest
    | "--cache" :: v :: rest -> cli.cache_dir <- Some v; go rest
    | "--deadline" :: v :: rest ->
      cli.deadline <- Some (float_of "--deadline" v);
      go rest
    | "--retries" :: v :: rest ->
      cli.retries <- nat_of "--retries" v;
      go rest
    | "--switch-at" :: v :: rest ->
      (match Simbench.Checkpoint.parse_point v with
      | Ok p -> cli.switch_at <- Some p
      | Error msg ->
        Printf.eprintf "--switch-at: %s\n" msg;
        usage ());
      go rest
    | "--insn-budget" :: v :: rest ->
      Sb_sim.Runner.set_insn_budget (int_of "--insn-budget" v);
      go rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
      cli.jobs <- int_of "-j" (String.sub a 2 (String.length a - 2));
      go rest
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
      Printf.eprintf "unknown option %S\n" a;
      usage ()
    | name :: rest -> cli.names <- name :: cli.names; go rest
  in
  go args

let () =
  let cli = parse_args (List.tl (Array.to_list Sys.argv)) in
  if cli.bechamel then run_bechamel ()
  else begin
    let config =
      if cli.quick then Sb_report.Experiments.quick_config
      else Sb_report.Experiments.default_config
    in
    (* timing repeats: the regression detector's significance test needs
       the full sample vector, so CI runs use --quick --repeats 3 *)
    let config =
      match cli.repeats with
      | None -> config
      | Some r -> { config with Sb_report.Experiments.repeats = r }
    in
    (* checkpointed fast-forward: run (or restore) each cell's setup up to
       POINT and start the timed engine there; pair with --cache so the
       warm boots persist and the whole grid shares them *)
    let config =
      { config with Sb_report.Experiments.switch_at = cli.switch_at }
    in
    let opts =
      {
        Sb_report.Experiments.jobs = cli.jobs;
        cache_dir = cli.cache_dir;
        deadline = cli.deadline;
        retries = cli.retries;
      }
    in
    let selected = List.rev cli.names @ (if cli.all then [ "all" ] else []) in
    let to_run =
      match selected with
      | [] ->
        List.filter (fun (name, _) -> not (List.mem name default_skip)) experiments
      | names ->
        List.filter_map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> Some (name, f)
            | None ->
              Printf.eprintf "unknown experiment %S (have: %s)\n" name
                (String.concat ", " (List.map fst experiments));
              None)
          names
    in
    List.iter
      (fun (name, f) ->
        Printf.printf "=== %s ===\n%!" name;
        Sb_report.Experiments.reset_records ();
        let t0 = Unix.gettimeofday () in
        print_string (f config opts);
        Printf.printf "\n[%s generated in %.1fs]\n\n%!" name
          (Unix.gettimeofday () -. t0);
        match cli.json_dir with
        | None -> ()
        | Some dir ->
          write_json ~dir ~experiment:name ~opts ~config
            (Sb_report.Experiments.recorded ()))
      to_run
  end
