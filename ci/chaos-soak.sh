#!/usr/bin/env bash
# Chaos gate for the self-healing service layer (docs/serve.md): the
# eight-client soak, but run through `simbench chaos-proxy` — a seeded
# fault injector that forwards in tiny chunks and resets connections
# mid-message — across three fixed seeds.  Asserts that every client
# still receives the complete, duplicate-free row set (the resilient
# client reconnects and resumes; the content-addressed store makes the
# resumes free), that no cell was ever simulated twice, and that the
# store scans clean.  Then the recovery check: SIGKILL the daemon (no
# graceful anything), restart it over the same store, and require a
# resumed client to be served entirely from disk.
#
# Runs anywhere: bash ci/chaos-soak.sh _build/default/bin/simbench_cli.exe
set -euo pipefail

cli=${1:?usage: chaos-soak.sh path/to/simbench_cli.exe}
clients=${2:-8}
seeds=(101 202 303)

work=$(mktemp -d)
sock=$work/serve.sock
cache=$work/cache
daemon=
proxy=
client_pids=()

cleanup() {
  [ -n "$proxy" ] && kill -9 "$proxy" 2>/dev/null
  [ -n "$daemon" ] && kill -9 "$daemon" 2>/dev/null
  for p in "${client_pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -f "$sock" "$work"/proxy-*.sock
  rm -rf "$work"
}
trap cleanup EXIT

cat > "$work/spec.json" <<'EOF'
{
  "schema": "simbench-serve-json-2",
  "cells": [
    {"bench": "Small Blocks", "engine": "interp", "arch": "sba", "iters": 400, "repeats": 2},
    {"bench": "Hot Memory Access", "engine": "dbt", "arch": "sba", "iters": 400},
    {"bench": "System Call", "engine": "interp", "arch": "vlx", "iters": 400}
  ]
}
EOF

start_daemon() {
  "$cli" serve --socket "$sock" -j 2 --cache "$cache" -v \
    > "$work/daemon-$1.log" 2>&1 &
  daemon=$!
  for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
  if [ ! -S "$sock" ]; then
    echo "daemon never bound $sock" >&2; cat "$work/daemon-$1.log" >&2; exit 1
  fi
}

start_daemon boot

for seed in "${seeds[@]}"; do
  psock=$work/proxy-$seed.sock
  "$cli" chaos-proxy --listen "unix:$psock" --upstream "unix:$sock" \
    --seed "$seed" --reset-after 1200,2400 --chunk 96 -v \
    > "$work/proxy-$seed.log" 2>&1 &
  proxy=$!
  for _ in $(seq 1 100); do [ -S "$psock" ] && break; sleep 0.1; done
  if [ ! -S "$psock" ]; then
    echo "proxy never bound $psock" >&2; cat "$work/proxy-$seed.log" >&2; exit 1
  fi

  client_pids=()
  for i in $(seq 1 "$clients"); do
    "$cli" client --connect "unix:$psock" "$work/spec.json" \
      --id "chaos-$seed-$i" --retries 20 --backoff 0.05 \
      --json "$work/rows-$seed-$i.json" \
      > "$work/client-$seed-$i.log" 2>&1 &
    client_pids+=("$!")
  done

  fail=0
  for p in "${client_pids[@]}"; do wait "$p" || fail=1; done
  client_pids=()
  if [ "$fail" -ne 0 ]; then
    echo "a chaos client (seed $seed) exited nonzero:" >&2
    tail -n +1 "$work"/client-"$seed"-*.log >&2
    cat "$work/proxy-$seed.log" >&2
    exit 1
  fi

  # complete and duplicate-free: exactly one row per cell, all ok
  for i in $(seq 1 "$clients"); do
    rows=$(grep -o '"cell":' "$work/rows-$seed-$i.json" | wc -l)
    ok=$(grep -o '"status":"ok"' "$work/rows-$seed-$i.json" | wc -l)
    if [ "$rows" -ne 3 ] || [ "$ok" -ne 3 ]; then
      echo "client $i (seed $seed) got $rows rows / $ok ok (wanted 3/3):" >&2
      cat "$work/client-$seed-$i.log" >&2
      exit 1
    fi
  done

  kill -TERM "$proxy" 2>/dev/null || true
  wait "$proxy" 2>/dev/null || true
  proxy=
  echo "seed $seed: $clients clients survived the chaos"
done

# chaos never caused a re-run: still at most one simulation per distinct cell
"$cli" client --connect "unix:$sock" --status > "$work/status.json"
sim=$(grep -o '"simulated":[0-9]*' "$work/status.json" | head -1 | cut -d: -f2)
reconnects=$(grep -o '"reconnects":[0-9]*' "$work/status.json" | head -1 | cut -d: -f2)
echo "simulated=$sim reconnects=$reconnects"
if [ "${sim:-99}" -gt 3 ]; then
  echo "chaos caused re-simulation ($sim > 3 distinct cells)" >&2
  cat "$work/status.json" >&2
  exit 1
fi

# the store survived the chaos intact
"$cli" fsck "$cache"

# recovery check: SIGKILL the daemon, restart over the same store, and a
# resumed client must be served entirely from disk (nothing simulated)
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=
"$cli" fsck --repair "$cache" > /dev/null  # a SIGKILL may strand a temp file
rm -f "$sock"
start_daemon restart

"$cli" client --connect "unix:$sock" "$work/spec.json" \
  --id "resume-after-kill" --retries 5 --backoff 0.05 \
  --json "$work/rows-resume.json" > "$work/client-resume.log" 2>&1
ok=$(grep -o '"status":"ok"' "$work/rows-resume.json" | wc -l)
if [ "$ok" -ne 3 ]; then
  echo "resumed client got $ok ok rows (wanted 3):" >&2
  cat "$work/client-resume.log" >&2
  exit 1
fi
"$cli" client --connect "unix:$sock" --status > "$work/status2.json"
sim2=$(grep -o '"simulated":[0-9]*' "$work/status2.json" | head -1 | cut -d: -f2)
if [ "${sim2:-99}" -ne 0 ]; then
  echo "restarted daemon re-simulated $sim2 cells instead of serving the store" >&2
  cat "$work/status2.json" >&2
  exit 1
fi

kill -TERM "$daemon"
wait "$daemon" || { echo "daemon exited nonzero after SIGTERM" >&2; exit 1; }
daemon=

echo "chaos soak ok: ${#seeds[@]} seeds x $clients clients, simulated=$sim, restart served from store"
