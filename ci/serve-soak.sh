#!/usr/bin/env bash
# Soak gate for the benchmark service (docs/serve.md): one daemon, eight
# concurrent clients submitting the same three-cell spec.  Asserts that
# every client receives the complete row set with every cell ok, that the
# shared content-addressed store deduplicated the overlap (24 cells
# requested, at most 3 simulations run), and that SIGTERM drains the
# daemon to a clean exit 0 with the listener socket unlinked.
#
# Runs anywhere: bash ci/serve-soak.sh _build/default/bin/simbench_cli.exe
set -euo pipefail

cli=${1:?usage: serve-soak.sh path/to/simbench_cli.exe}
clients=${2:-8}

work=$(mktemp -d)
sock=$work/serve.sock
daemon=
client_pids=()

# every failure path must leave nothing behind: kill the daemon and any
# straggling clients hard, and unlink the socket even if the daemon died
# before its own cleanup ran
cleanup() {
  [ -n "$daemon" ] && kill -9 "$daemon" 2>/dev/null
  for p in "${client_pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -f "$sock"
  rm -rf "$work"
}
trap cleanup EXIT

cat > "$work/spec.json" <<'EOF'
{
  "schema": "simbench-serve-json-2",
  "cells": [
    {"bench": "Small Blocks", "engine": "interp", "arch": "sba", "iters": 400, "repeats": 2},
    {"bench": "Hot Memory Access", "engine": "dbt", "arch": "sba", "iters": 400},
    {"bench": "System Call", "engine": "interp", "arch": "vlx", "iters": 400}
  ]
}
EOF

"$cli" serve --socket "$sock" -j 2 --cache "$work/cache" -v \
  > "$work/daemon.log" 2>&1 &
daemon=$!

for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.1; done
if [ ! -S "$sock" ]; then
  echo "daemon never bound $sock" >&2; cat "$work/daemon.log" >&2; exit 1
fi

for i in $(seq 1 "$clients"); do
  "$cli" client --connect "unix:$sock" "$work/spec.json" \
    --id "soak-$i" --json "$work/rows-$i.json" \
    > "$work/client-$i.log" 2>&1 &
  client_pids+=("$!")
done

fail=0
for p in "${client_pids[@]}"; do wait "$p" || fail=1; done
client_pids=()
if [ "$fail" -ne 0 ]; then
  echo "a soak client exited nonzero:" >&2
  tail -n +1 "$work"/client-*.log >&2
  exit 1
fi

# every client got the complete row set, every cell ok
for i in $(seq 1 "$clients"); do
  ok=$(grep -o '"status":"ok"' "$work/rows-$i.json" | wc -l)
  if [ "$ok" -ne 3 ]; then
    echo "client $i got $ok ok rows (wanted 3):" >&2
    cat "$work/client-$i.log" >&2
    exit 1
  fi
done

# the shared store served the duplicates
"$cli" client --connect "unix:$sock" --status > "$work/status.json"
dedup=$(grep -o '"deduplicated":[0-9]*' "$work/status.json" | head -1 | cut -d: -f2)
sim=$(grep -o '"simulated":[0-9]*' "$work/status.json" | head -1 | cut -d: -f2)
echo "simulated=$sim deduplicated=$dedup"
if [ "${dedup:-0}" -le 0 ]; then
  echo "shared cache served no duplicates" >&2; cat "$work/status.json" >&2; exit 1
fi
if [ "${sim:-99}" -gt 3 ]; then
  echo "more simulations than distinct cells" >&2; cat "$work/status.json" >&2; exit 1
fi

# the persistent store must scan clean while the daemon is live
"$cli" fsck "$work/cache"

# graceful SIGTERM shutdown: drain, exit 0, unlink the socket
kill -TERM "$daemon"
if ! wait "$daemon"; then
  status=$?
  echo "daemon exited $status after SIGTERM:" >&2; cat "$work/daemon.log" >&2
  exit 1
fi
daemon=
if [ -S "$sock" ]; then
  echo "listener socket left behind after shutdown" >&2; exit 1
fi

echo "serve soak ok: $clients clients, simulated=$sim deduplicated=$dedup"
