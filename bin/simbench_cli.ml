(* SimBench command-line interface.

   Subcommands:
     list        enumerate benchmarks, engines, workloads and DBT versions
     run         run one benchmark on one engine
     suite       run the full suite on one engine and print the table
     workload    run one SPEC-analog workload
     chaos       deterministic fault injection + differential convergence
     lint        statically check benchmark programs and conventions
     report      regenerate paper figures (same drivers as bench/main.exe)
     baseline    snapshot a --json run directory as a regression baseline
     compare     statistical regression detection between two recorded runs
     serve       persistent benchmark service over a Unix/TCP socket
     client      submit jobs to / query a running benchmark service
     fsck        check/repair a result-store directory
     chaos-proxy seeded transport-fault proxy for resilience testing *)

open Cmdliner

let arch_conv =
  let parse = function
    | "sba" | "sba32" | "arm" -> Ok Sb_isa.Arch_sig.Sba
    | "vlx" | "vlx32" | "x86" -> Ok Sb_isa.Arch_sig.Vlx
    | s -> Error (`Msg (Printf.sprintf "unknown architecture %S (sba|vlx)" s))
  in
  let print ppf a = Format.pp_print_string ppf (Sb_isa.Arch_sig.arch_id_name a) in
  Arg.conv (parse, print)

let arch_arg =
  Arg.(
    value
    & opt arch_conv Sb_isa.Arch_sig.Sba
    & info [ "a"; "arch" ] ~docv:"ARCH" ~doc:"Guest architecture: sba (ARM analog) or vlx (x86 analog).")

let engine_of_string arch s = Simbench.Engines.of_string arch s

let engine_arg =
  Arg.(
    value & opt string "dbt"
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Engine: interp, dbt, detailed, virt, native, or dbt@VERSION (e.g. \
           dbt@v2.0.0).")

let scale_arg =
  Arg.(
    value & opt int Simbench.Harness.default_scale
    & info [ "scale" ] ~docv:"N" ~doc:"Divide Figure 3 iteration counts by N.")

let iters_arg =
  Arg.(
    value & opt (some int) None
    & info [ "iters" ] ~docv:"N" ~doc:"Exact iteration count (overrides --scale).")

let switch_at_conv =
  let parse s =
    match Simbench.Checkpoint.parse_point s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p =
    Format.pp_print_string ppf (Simbench.Checkpoint.point_to_string p)
  in
  Arg.conv (parse, print)

let switch_at_arg =
  Arg.(
    value
    & opt (some switch_at_conv) None
    & info [ "switch-at" ] ~docv:"POINT"
        ~doc:
          "Checkpointed fast-forward: run setup under a cheap engine (or \
           restore a checkpoint), switch to the timed engine at POINT — \
           $(b,kernel) (the kernel-start phase write) or $(b,insn:N).")

let setup_engine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "setup-engine" ] ~docv:"ENGINE"
        ~doc:
          "Engine for the fast-forward phase (default: matched to the timed \
           engine's granularity — interp for per-insn engines, the DBT for \
           itself).")

let ckpt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ckpt" ] ~docv:"DIR"
        ~doc:
          "Checkpoint store directory: snapshots taken at --switch-at are \
           saved here and reused by later runs with the same setup key.")

let print_outcome (o : Simbench.Harness.outcome) =
  Printf.printf "%-28s %-18s iters=%-9d kernel=%.4fs total=%.4fs insns=%d density=%.4f\n"
    o.Simbench.Harness.bench_name o.Simbench.Harness.engine_name
    o.Simbench.Harness.iters o.Simbench.Harness.kernel_seconds
    o.Simbench.Harness.result.Sb_sim.Run_result.wall_seconds
    o.Simbench.Harness.kernel_insns
    (Simbench.Harness.density o)

let with_engine arch engine_name f =
  match engine_of_string arch engine_name with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok engine -> f engine

(* ---- list ---- *)

let list_cmd =
  let action () =
    print_endline "Benchmarks (Figure 3):";
    List.iter
      (fun b ->
        Printf.printf "  %-28s %-20s %s\n" b.Simbench.Bench.name
          (Simbench.Category.name b.Simbench.Bench.category)
          b.Simbench.Bench.description)
      Simbench.Suite.all;
    print_endline "\nExtension benchmarks (beyond the paper's 18):";
    List.iter
      (fun b ->
        Printf.printf "  %-28s %-20s %s\n" b.Simbench.Bench.name
          (Simbench.Category.name b.Simbench.Bench.category)
          b.Simbench.Bench.description)
      Simbench.Suite_ext.all;
    print_endline "\nEngines: interp | dbt | detailed | virt | native | dbt@VERSION";
    print_endline "\nDBT versions:";
    Printf.printf "  %s\n" (String.concat ", " Sb_dbt.Version.names);
    print_endline "\nWorkloads (SPEC analogs):";
    List.iter
      (fun w ->
        Printf.printf "  %-12s (%s)\n" w.Sb_workloads.Workloads.name
          w.Sb_workloads.Workloads.spec_name)
      Sb_workloads.Workloads.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate benchmarks, engines and workloads.")
    Term.(const action $ const ())

(* ---- run ---- *)

let run_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name from Figure 3.")
  in
  let counters_arg =
    Arg.(
      value & flag
      & info [ "counters" ] ~doc:"Print the kernel-phase perf counters.")
  in
  let action arch engine_name bench_name scale iters counters switch_at
      setup_engine_name ckpt_dir =
    let found =
      match Simbench.Suite.find bench_name with
      | Some _ as b -> b
      | None -> Simbench.Suite_ext.find bench_name
    in
    match found with
    | None ->
      Printf.eprintf "unknown benchmark %S; try the list command\n" bench_name;
      1
    | Some bench ->
      with_engine arch engine_name (fun engine ->
          let support = Simbench.Engines.support arch in
          let setup_engine =
            match setup_engine_name with
            | None -> None
            | Some s -> (
              match engine_of_string arch s with
              | Ok e -> Some e
              | Error msg ->
                prerr_endline msg;
                exit 1)
          in
          let checkpoints =
            Option.map (fun dir -> Simbench.Checkpoint.open_store ~dir)
              ckpt_dir
          in
          let o =
            Simbench.Harness.run ~scale ?iters ?switch_at ?setup_engine
              ?checkpoints ~support ~engine bench
          in
          print_outcome o;
          if counters then begin
            match o.Simbench.Harness.result.Sb_sim.Run_result.kernel_perf with
            | Some kp ->
              print_endline "kernel-phase counters:";
              List.iter
                (fun (c, v) ->
                  Printf.printf "  %-24s %d\n" (Sb_sim.Perf.to_string c) v)
                (Sb_sim.Perf.to_alist kp)
            | None -> print_endline "no kernel perf snapshot"
          end;
          0)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark on one engine.")
    Term.(
      const action $ arch_arg $ engine_arg $ bench_arg $ scale_arg $ iters_arg
      $ counters_arg $ switch_at_arg $ setup_engine_arg $ ckpt_arg)

(* ---- suite ---- *)

let suite_cmd =
  let action arch engine_name scale switch_at ckpt_dir =
    with_engine arch engine_name (fun engine ->
        let support = Simbench.Engines.support arch in
        let checkpoints =
          Option.map (fun dir -> Simbench.Checkpoint.open_store ~dir) ckpt_dir
        in
        List.iter
          (fun bench ->
            print_outcome
              (Simbench.Harness.run ~scale ?switch_at ?checkpoints ~support
                 ~engine bench))
          Simbench.Suite.all;
        0)
  in
  Cmd.v (Cmd.info "suite" ~doc:"Run the full 18-benchmark suite on one engine.")
    Term.(
      const action $ arch_arg $ engine_arg $ scale_arg $ switch_at_arg
      $ ckpt_arg)

(* ---- workload ---- *)

let workload_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (e.g. sjeng, mcf).")
  in
  let iters_arg =
    Arg.(value & opt int 40 & info [ "iters" ] ~docv:"N" ~doc:"Kernel passes.")
  in
  let action arch engine_name name iters switch_at ckpt_dir =
    match Sb_workloads.Workloads.find name with
    | None ->
      Printf.eprintf "unknown workload %S; try the list command\n" name;
      1
    | Some w ->
      with_engine arch engine_name (fun engine ->
          let support = Simbench.Engines.support arch in
          let checkpoints =
            Option.map (fun dir -> Simbench.Checkpoint.open_store ~dir)
              ckpt_dir
          in
          print_outcome
            (Sb_workloads.Workloads.run ~iters ?switch_at ?checkpoints ~support
               ~engine w);
          0)
  in
  Cmd.v (Cmd.info "workload" ~doc:"Run one SPEC-analog workload on one engine.")
    Term.(
      const action $ arch_arg $ engine_arg $ name_arg $ iters_arg
      $ switch_at_arg $ ckpt_arg)

(* ---- disasm ---- *)

let disasm_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark whose assembled image to disassemble.")
  in
  let limit_arg =
    Arg.(
      value & opt int 256
      & info [ "limit" ] ~docv:"BYTES" ~doc:"How many bytes to disassemble.")
  in
  let action arch bench_name limit =
    let found =
      match Simbench.Suite.find bench_name with
      | Some _ as b -> b
      | None -> Simbench.Suite_ext.find bench_name
    in
    match found with
    | None ->
      Printf.eprintf "unknown benchmark %S\n" bench_name;
      1
    | Some bench ->
      let support = Simbench.Engines.support arch in
      let program =
        Simbench.Rt.program ~support ~platform:Simbench.Platform.sbp_ref ~bench
      in
      let image = program.Sb_asm.Program.image in
      let base = program.Sb_asm.Program.base in
      let read8 a =
        let i = a - base in
        if i >= 0 && i < Bytes.length image then Char.code (Bytes.get image i) else 0
      in
      let arch_mod : (module Sb_isa.Arch_sig.ARCH) =
        match arch with
        | Sb_isa.Arch_sig.Sba -> (module Sb_arch_sba.Arch)
        | Sb_isa.Arch_sig.Vlx -> (module Sb_arch_vlx.Arch)
      in
      Printf.printf "%s on %s: image %d bytes, entry 0x%x\n\n" bench_name
        (Sb_isa.Arch_sig.arch_id_name arch)
        (Bytes.length image) program.Sb_asm.Program.entry;
      List.iter
        (fun (name, a) -> Printf.printf "%08x <%s>\n" a name)
        (List.filteri (fun i _ -> i < 12) program.Sb_asm.Program.symbols);
      print_newline ();
      print_string
        (Sb_isa.Disasm.dump ~arch:arch_mod ~read8 ~base
           ~len:(min limit (Bytes.length image)));
      0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a benchmark's assembled guest image.")
    Term.(const action $ arch_arg $ bench_arg $ limit_arg)

(* ---- verify ---- *)

let verify_cmd =
  let seeds_arg =
    Arg.(value & opt int 25 & info [ "seeds" ] ~docv:"N" ~doc:"Random programs to try.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate-passes" ]
          ~doc:
            "Statically validate every DBT optimiser pass on every \
             translated block during the sweep; invalid rewrites are \
             reported alongside dynamic divergences.")
  in
  let action arch seeds validate =
    let engines = Sb_verify.Verify.default_engines arch in
    Printf.printf "verifying %d random programs across %d engines (%s%s)...\n%!"
      seeds (List.length engines)
      (Sb_isa.Arch_sig.arch_id_name arch)
      (if validate then ", static pass validation on" else "");
    let validate_passes =
      if validate then
        Some
          (fun ~version ~pass ~before ~after ->
            Option.map Sb_analysis.Ir_check.message
              (Sb_analysis.Ir_check.check ?version ~pass ~before ~after ()))
      else None
    in
    match
      Sb_verify.Verify.random_sweep ~arch ~engines ~seeds ?validate_passes ()
    with
    | [] ->
      Printf.printf "OK: all engines agree on all %d programs\n" seeds;
      0
    | divergences ->
      List.iter
        (fun (d : Sb_verify.Verify.divergence) ->
          Printf.printf "DIVERGENCE seed=%s: %s vs %s: %s\n"
            (match d.Sb_verify.Verify.seed with Some s -> string_of_int s | None -> "?")
            d.Sb_verify.Verify.reference_engine d.Sb_verify.Verify.diverging_engine
            d.Sb_verify.Verify.detail)
        divergences;
      1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Differentially verify all engines on randomized guest programs.")
    Term.(const action $ arch_arg $ seeds_arg $ validate_arg)

(* ---- chaos ---- *)

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"First fault-plan seed; plans for seeds N, N+1, ... are checked.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"COUNT" ~doc:"How many consecutive fault plans to check.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Check a single plan (CI smoke settings).")
  in
  let plan_arg =
    Arg.(
      value & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Replay one serialized fault plan (JSON, schema \
             simbench-fault-plan-1) instead of generating plans from seeds.")
  in
  let save_plan_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-plan" ] ~docv:"FILE"
          ~doc:
            "Write the (first) checked plan as JSON — the thing to attach \
             to a bug report so a divergence can be replayed anywhere.")
  in
  let action arch seed seeds quick plan_file save_plan =
    let engines = Sb_verify.Verify.default_engines arch in
    let plans =
      match plan_file with
      | Some file -> (
        match Sb_fault.Plan.load file with
        | Ok p -> Ok [ p ]
        | Error msg -> Error msg)
      | None ->
        let count = if quick then 1 else max 1 seeds in
        Ok
          (List.init count (fun i ->
               Sb_fault.Plan.generate ~seed:(seed + i)))
    in
    match plans with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok plans ->
      (match (save_plan, plans) with
      | Some out, p :: _ ->
        Sb_fault.Plan.save out p;
        Printf.printf "[wrote plan for seed %d to %s]\n" p.Sb_fault.Plan.seed out
      | _ -> ());
      Printf.printf
        "chaos: %d fault plan%s across %d engines (%s)...\n%!"
        (List.length plans)
        (if List.length plans = 1 then "" else "s")
        (List.length engines)
        (Sb_isa.Arch_sig.arch_id_name arch);
      let failures =
        List.filter_map
          (fun (p : Sb_fault.Plan.t) ->
            match Sb_fault.Fault.check ~engines ~arch p with
            | Ok (o : Sb_verify.Verify.outcome) ->
              Printf.printf
                "  seed %-6d mmio=%-2d storm=%d bus_errors=%d flips=%d irqs=%d \
                 -> all engines agree (halted=%b)\n%!"
                p.Sb_fault.Plan.seed p.Sb_fault.Plan.mmio_chunks
                p.Sb_fault.Plan.storm_chunks
                (List.length p.Sb_fault.Plan.bus_errors)
                (List.length p.Sb_fault.Plan.bit_flips)
                (List.length p.Sb_fault.Plan.spurious_irqs)
                o.Sb_verify.Verify.halted;
              None
            | Error (d : Sb_verify.Verify.divergence) ->
              Printf.printf "  seed %-6d DIVERGENCE %s vs %s: %s\n%!"
                p.Sb_fault.Plan.seed d.Sb_verify.Verify.reference_engine
                d.Sb_verify.Verify.diverging_engine d.Sb_verify.Verify.detail;
              Some d)
          plans
      in
      if failures = [] then begin
        Printf.printf "OK: engines converge under all %d fault plans\n"
          (List.length plans);
        0
      end
      else begin
        Printf.printf "%d of %d fault plans diverged\n" (List.length failures)
          (List.length plans);
        1
      end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic fault injection with differential checking: arm a \
          seeded fault plan (bus errors on device accesses, RAM bit flips, \
          spurious masked interrupts, TLB-invalidation storms) identically \
          on every engine and demand they converge to the same \
          architectural state or the same guest exception.  See \
          docs/robustness.md.")
    Term.(
      const action $ arch_arg $ seed_arg $ seeds_arg $ quick_arg $ plan_arg
      $ save_plan_arg)

(* ---- lint ---- *)

let lint_cmd =
  let benches_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks to lint; the whole suite by default.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit nonzero on warnings too, not just errors.")
  in
  let workloads_arg =
    Arg.(
      value & flag
      & info [ "workloads" ] ~doc:"Also lint the SPEC-analog workload programs.")
  in
  let arch_opt_arg =
    Arg.(
      value
      & opt (some arch_conv) None
      & info [ "a"; "arch" ] ~docv:"ARCH"
          ~doc:"Lint under one architecture support package only (default: all).")
  in
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let finding_json (f : Sb_analysis.Lint.finding) =
    let loc_fields =
      match f.Sb_analysis.Lint.loc with
      | None -> ""
      | Some l ->
        Printf.sprintf ",\"op\":%d%s" l.Sb_analysis.Cfg.index
          (match l.Sb_analysis.Cfg.context with
          | Some label ->
            Printf.sprintf ",\"label\":\"%s\",\"offset\":%d" (json_escape label)
              l.Sb_analysis.Cfg.offset
          | None -> "")
    in
    Printf.sprintf
      "{\"rule\":\"%s\",\"severity\":\"%s\",\"region\":\"%s\"%s,\"message\":\"%s\"}"
      (json_escape f.Sb_analysis.Lint.rule)
      (match f.Sb_analysis.Lint.severity with
      | Sb_analysis.Lint.Error -> "error"
      | Sb_analysis.Lint.Warning -> "warning")
      (json_escape f.Sb_analysis.Lint.region)
      loc_fields
      (json_escape f.Sb_analysis.Lint.message)
  in
  let action arch_opt json strict workloads names =
    let all_benches =
      Simbench.Suite.all @ Simbench.Suite_ext.all
      @ (if workloads then
           List.map (fun w -> w.Sb_workloads.Workloads.bench) Sb_workloads.Workloads.all
         else [])
    in
    let benches =
      if names = [] then Ok all_benches
      else
        let find n =
          match
            List.find_opt
              (fun b ->
                String.lowercase_ascii b.Simbench.Bench.name
                = String.lowercase_ascii n)
              all_benches
          with
          | Some b -> Ok b
          | None -> Error n
        in
        List.fold_left
          (fun acc n ->
            match (acc, find n) with
            | Error e, _ -> Error e
            | _, Error n -> Error n
            | Ok bs, Ok b -> Ok (bs @ [ b ]))
          (Ok []) names
    in
    match benches with
    | Error n ->
      Printf.eprintf "unknown benchmark %S\n" n;
      1
    | Ok benches ->
      let arches =
        match arch_opt with
        | Some a -> [ a ]
        | None -> Simbench.Engines.all_arches
      in
      let results =
        List.concat_map
          (fun arch ->
            let support = Simbench.Engines.support arch in
            List.map
              (fun bench ->
                ( bench.Simbench.Bench.name,
                  Simbench.Support.name support,
                  Sb_analysis.Lint.lint_bench ~support bench ))
              benches)
          arches
      in
      (* Pass-validator sweep: statically prove the DBT optimiser pipeline
         architecturally transparent over each shipped image.  The newest
         release runs the longest pass prefix, so validating it under our
         own chunking subsumes every older release. *)
      let sweep_version, sweep_config =
        List.nth Sb_dbt.Version.all (List.length Sb_dbt.Version.all - 1)
      in
      let pass_violations =
        List.concat_map
          (fun arch ->
            let support = Simbench.Engines.support arch in
            List.concat_map
              (fun bench ->
                let program =
                  Simbench.Rt.program ~support
                    ~platform:Simbench.Platform.sbp_ref ~bench
                in
                let image = program.Sb_asm.Program.image in
                let base = program.Sb_asm.Program.base in
                let read8 a =
                  let i = a - base in
                  if i >= 0 && i < Bytes.length image then
                    Char.code (Bytes.get image i)
                  else 0
                in
                List.map
                  (fun v ->
                    (bench.Simbench.Bench.name, Simbench.Support.name support, v))
                  (Sb_analysis.Tv.sweep_program ~arch ~config:sweep_config
                     ~version:sweep_version ~read8 ~base
                     ~len:(Bytes.length image) ()))
              benches)
          arches
      in
      let n_errors = ref 0 and n_warnings = ref 0 in
      List.iter
        (fun (_, _, fs) ->
          List.iter
            (fun f ->
              match f.Sb_analysis.Lint.severity with
              | Sb_analysis.Lint.Error -> incr n_errors
              | Sb_analysis.Lint.Warning -> incr n_warnings)
            fs)
        results;
      n_errors := !n_errors + List.length pass_violations;
      if json then begin
        let lints =
          List.map
            (fun (bench, arch, fs) ->
              Printf.sprintf
                "{\"bench\":\"%s\",\"arch\":\"%s\",\"findings\":[%s]}"
                (json_escape bench) (json_escape arch)
                (String.concat "," (List.map finding_json fs)))
            results
        in
        let violation_json (bench, arch, (v : Sb_analysis.Ir_check.violation))
            =
          Printf.sprintf
            "{\"bench\":\"%s\",\"arch\":\"%s\",\"pass\":\"%s\",\"version\":%s,\"va\":%d,\"insn\":%d,\"message\":\"%s\"}"
            (json_escape bench) (json_escape arch)
            (json_escape v.Sb_analysis.Ir_check.pass)
            (match v.Sb_analysis.Ir_check.version with
            | Some ver -> Printf.sprintf "\"%s\"" (json_escape ver)
            | None -> "null")
            v.Sb_analysis.Ir_check.va v.Sb_analysis.Ir_check.index
            (json_escape (Sb_analysis.Ir_check.message v))
        in
        Printf.printf
          "{\"schema\":\"simbench-lint-json-1\",\"lints\":[%s],\"pass_violations\":[%s],\"errors\":%d,\"warnings\":%d}\n"
          (String.concat "," lints)
          (String.concat "," (List.map violation_json pass_violations))
          !n_errors !n_warnings
      end
      else begin
        List.iter
          (fun (bench, arch, fs) ->
            List.iter
              (fun f ->
                Printf.printf "%s [%s]: %s\n" bench arch
                  (Sb_analysis.Lint.render f))
              fs)
          results;
        List.iter
          (fun (bench, arch, v) ->
            Printf.printf "%s [%s]: %s\n" bench arch
              (Sb_analysis.Ir_check.message v))
          pass_violations;
        Printf.printf "%d error%s, %d warning%s across %d lints\n" !n_errors
          (if !n_errors = 1 then "" else "s")
          !n_warnings
          (if !n_warnings = 1 then "" else "s")
          (List.length results)
      end;
      if !n_errors > 0 || (strict && !n_warnings > 0) then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check benchmark programs: label graph, reachability, \
          use-before-def, and the v3/v4/sp/lr register conventions.")
    Term.(
      const action $ arch_opt_arg $ json_arg $ strict_arg $ workloads_arg
      $ benches_arg)

(* ---- tv ---- *)

let tv_cmd =
  let arch_opt_arg =
    Arg.(
      value
      & opt (some arch_conv) None
      & info [ "a"; "arch" ] ~docv:"ARCH"
          ~doc:"Validate one architecture only (default: all).")
  in
  let versions_arg =
    Arg.(
      value & opt_all string []
      & info [ "V"; "dbt-version" ] ~docv:"VERSION"
          ~doc:
            "DBT version(s) to validate (repeatable); all registered \
             versions by default.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Also fail when the encoding enumeration does not tile the \
             selector space (gaps, overlaps, or an unskipped class without \
             cases).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Per-class check-count table.")
  in
  let action arch_opt versions json strict verbose =
    let arches =
      match arch_opt with Some a -> [ a ] | None -> Simbench.Engines.all_arches
    in
    let versions = match versions with [] -> None | vs -> Some vs in
    match List.map (fun arch -> Sb_analysis.Tv.run ~arch ?versions ()) arches with
    | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      2
    | reports ->
      if json then
        print_endline
          (Sb_util.Json.to_string
             (Sb_util.Json.Obj
                [
                  ("schema", Sb_util.Json.String Sb_analysis.Tv.json_schema);
                  ( "reports",
                    Sb_util.Json.List
                      (List.map Sb_analysis.Tv.to_json reports) );
                ]))
      else List.iter (fun r -> print_string (Sb_analysis.Tv.render ~verbose r)) reports;
      if List.for_all (Sb_analysis.Tv.ok ~strict) reports then 0 else 1
  in
  Cmd.v
    (Cmd.info "tv"
       ~doc:
         "Symbolic translation validation: prove the IR the DBT emits for \
          every decodable encoding matches the interpreter's reference \
          semantics, for every registered DBT version.")
    Term.(
      const action $ arch_opt_arg $ versions_arg $ json_arg $ strict_arg
      $ verbose_arg)

(* ---- debug ---- *)

let debug_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark to debug.")
  in
  let break_arg =
    Arg.(
      value & opt (some string) None
      & info [ "break" ] ~docv:"LABEL" ~doc:"Break at this program label.")
  in
  let steps_arg =
    Arg.(
      value & opt int 16
      & info [ "steps" ] ~docv:"N" ~doc:"Single-steps to trace after the break.")
  in
  let action arch engine_name bench_name break steps =
    let found =
      match Simbench.Suite.find bench_name with
      | Some _ as b -> b
      | None -> Simbench.Suite_ext.find bench_name
    in
    match found with
    | None ->
      Printf.eprintf "unknown benchmark %S\n" bench_name;
      1
    | Some bench ->
      with_engine arch engine_name (fun engine ->
          let support = Simbench.Engines.support arch in
          let platform = Simbench.Platform.sbp_ref in
          let program = Simbench.Rt.program ~support ~platform ~bench in
          let machine = Simbench.Platform.machine platform () in
          Sb_mem.Benchdev.set_iters machine.Sb_sim.Machine.benchdev 10;
          Sb_sim.Machine.load_program machine program;
          let arch_mod : (module Sb_isa.Arch_sig.ARCH) =
            match arch with
            | Sb_isa.Arch_sig.Sba -> (module Sb_arch_sba.Arch)
            | Sb_isa.Arch_sig.Vlx -> (module Sb_arch_vlx.Arch)
          in
          let dbg = Sb_sim.Debugger.create ~engine ~arch:arch_mod machine in
          (match break with
          | Some label -> (
            match Sb_asm.Program.symbol_opt program label with
            | Some addr ->
              Sb_sim.Debugger.add_breakpoint dbg addr;
              (match Sb_sim.Debugger.continue_ dbg with
              | Sb_sim.Debugger.Breakpoint addr ->
                Printf.printf "breakpoint hit at 0x%x after %d instructions\n\n"
                  addr
                  (Sb_sim.Debugger.instructions_retired dbg)
              | _ -> Printf.printf "never reached %s\n" label)
            | None -> Printf.printf "no such label %S; known labels:\n%s\n" label
                (String.concat ", " (List.map fst program.Sb_asm.Program.symbols)))
          | None -> ());
          for _ = 1 to steps do
            Printf.printf "%s\n"
              (Sb_sim.Debugger.disassemble_here ~count:1 dbg);
            ignore (Sb_sim.Debugger.step dbg)
          done;
          print_newline ();
          print_string (Sb_sim.Debugger.dump_registers dbg);
          0)
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:"Single-step a benchmark under a debugger with breakpoints.")
    Term.(const action $ arch_arg $ engine_arg $ bench_arg $ break_arg $ steps_arg)

(* ---- serve / client ---- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain listener socket path.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Loopback TCP listener port.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker processes in the pool.")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Persistent result cache shared by every client (and with \
             $(b,report --cache) runs): identical cells across requests and \
             restarts cost one simulation.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-cell wall-clock budget; overruns report status timeout.")
  in
  let window_arg =
    Arg.(
      value & opt int 0
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Max in-flight cells per client (backpressure); default 2x \
             --jobs.")
  in
  let max_buffer_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-buffer" ] ~docv:"BYTES"
          ~doc:
            "Outbound watermark per client: no new cells are dispatched for \
             a client buffering more result bytes than this.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Log connections and jobs to stderr.")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt float Sb_serve.Serve.default_config.Sb_serve.Serve.heartbeat
      & info [ "heartbeat" ] ~docv:"SECS"
          ~doc:
            "Client-liveness interval announced in the hello frame; any \
             inbound byte counts.  0 disables dropping silent clients.")
  in
  let miss_limit_arg =
    Arg.(
      value
      & opt int Sb_serve.Serve.default_config.Sb_serve.Serve.miss_limit
      & info [ "miss-limit" ] ~docv:"N"
          ~doc:
            "Consecutive missed heartbeat intervals before a silent client \
             is dropped.")
  in
  let action socket port jobs cache deadline window max_buffer heartbeat
      miss_limit verbose =
    if socket = None && port = None then begin
      prerr_endline "serve: need --socket PATH and/or --port N";
      2
    end
    else if jobs < 1 then begin
      prerr_endline "serve: --jobs must be >= 1";
      2
    end
    else begin
      let cfg =
        {
          Sb_serve.Serve.unix_path = socket;
          tcp_port = port;
          jobs;
          cache_dir = cache;
          deadline;
          window;
          max_buffer;
          heartbeat;
          miss_limit;
          verbose;
        }
      in
      match Sb_serve.Serve.create cfg with
      | exception Invalid_argument msg ->
        prerr_endline msg;
        2
      | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "serve: %s %s: %s\n" fn arg (Unix.error_message e);
        2
      | t ->
        Sb_serve.Serve.run t;
        0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the benchmark service: a persistent daemon that accepts JSON \
          job submissions over a socket, shards cells across a worker pool, \
          deduplicates identical requests through a shared \
          content-addressed result store, and streams rows back as they \
          land.  SIGTERM drains gracefully and exits 0.  See docs/serve.md.")
    Term.(
      const action $ socket_arg $ port_arg $ jobs_arg $ cache_arg
      $ deadline_arg $ window_arg $ max_buffer_arg $ heartbeat_arg
      $ miss_limit_arg $ verbose_arg)

let client_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Server address: unix:PATH, tcp:HOST:PORT, or a bare Unix \
             socket path.")
  in
  let spec_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SPEC.json"
          ~doc:
            "Job spec file: a JSON object with a \"cells\" array of \
             $(i,{bench, engine, arch, iters?, repeats?}) objects.")
  in
  let cell_arg =
    Arg.(
      value & opt_all string []
      & info [ "cell" ] ~docv:"BENCH"
          ~doc:
            "Inline cell (repeatable): run $(docv) with the --engine/--arch/\
             --iters/--repeats settings.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 1
      & info [ "repeats" ] ~docv:"N" ~doc:"Timing repeats per inline cell.")
  in
  let id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Job id (default: derived from the pid).")
  in
  let cancel_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cancel" ] ~docv:"N"
          ~doc:
            "Cancel the job after receiving N rows; remaining queued cells \
             are dropped without killing workers.")
  in
  let wait_arg =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:
            "With --cancel: keep reading until the server confirms the \
             cancellation (this is the default behaviour; flag kept for \
             scripting clarity).")
  in
  let status_arg =
    Arg.(
      value & flag
      & info [ "status" ] ~doc:"Print the server's status counters as JSON.")
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:
            "Print every row the server knows as a bench-schema run (pipe to \
             a file and feed it to compare/baseline).")
  in
  let stop_arg =
    Arg.(
      value & flag
      & info [ "stop" ] ~doc:"Ask the server to shut down gracefully.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the received rows as a bench-schema JSON file \
             (readable by compare/baseline).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Sb_serve.Resilient.default_config.Sb_serve.Resilient.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Reconnect budget for a submission: on a lost or garbled \
             connection the client reconnects and resumes the cells it has \
             not yet received (rows are never duplicated).  0 fails fast.")
  in
  let backoff_arg =
    Arg.(
      value
      & opt float Sb_serve.Resilient.default_config.Sb_serve.Resilient.backoff
      & info [ "backoff" ] ~docv:"SECS"
          ~doc:
            "First reconnect delay; doubles per attempt (with jitter) up to \
             a 5 s ceiling.")
  in
  let bench_run_json cells =
    Sb_util.Json.Obj
      [
        ("schema", Sb_util.Json.String Sb_regress.Baseline.bench_schema);
        ("experiment", Sb_util.Json.String "serve");
        ("cells", Sb_util.Json.List cells);
      ]
  in
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    output_char oc '\n';
    close_out oc
  in
  let print_row ?(retried = false) ~cached cell =
    let s name =
      match
        Option.bind (Sb_util.Json.member name cell) Sb_util.Json.string_opt
      with
      | Some v -> v
      | None -> "?"
    in
    let seconds =
      match
        Option.bind (Sb_util.Json.member "seconds" cell) Sb_util.Json.float_opt
      with
      | Some v -> Printf.sprintf "%.4fs" v
      | None -> "-"
    in
    Printf.printf "%-12s %-28s %-14s %-5s %10s%s%s\n%!" (s "status") (s "cell")
      (s "engine") (s "arch") seconds
      (if cached then "  (cached)" else "")
      (if retried then "  (retried)" else "")
  in
  let specs_of_file file =
    match open_in_bin file with
    | exception Sys_error msg -> Error msg
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in_noerr ic;
      (match Sb_util.Json.of_string s with
      | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
      | Ok j -> (
        match
          Option.bind (Sb_util.Json.member "schema" j) Sb_util.Json.string_opt
        with
        | Some tag when tag <> Sb_serve.Protocol.schema ->
          Error
            (Printf.sprintf "%s: unsupported schema %S (expected %S)" file tag
               Sb_serve.Protocol.schema)
        | _ -> Sb_serve.Protocol.specs_of_json j))
  in
  (* transport failures get their own exit codes so scripts (and the CI
     soak gates) can tell "no server there" (3) from "the server died
     under me" (4) from usage/protocol errors (2) *)
  let err_exit = function
    | Sb_serve.Client.Connect_failed _ -> 3
    | Sb_serve.Client.Server_gone _ -> 4
    | Sb_serve.Client.Protocol_error _ | Sb_serve.Client.Server_error _ -> 2
  in
  let fail err =
    prerr_endline (Sb_serve.Client.error_message err);
    err_exit err
  in
  let action addr spec_file cells arch engine iters repeats id cancel_after
      wait status dump stop json_out retries backoff =
    ignore wait;
    let with_conn f =
      match Sb_serve.Client.connect addr with
      | Error err -> fail err
      | Ok conn ->
        let code = f conn in
        Sb_serve.Client.close conn;
        code
    in
    let report_outcome ?stats outcome rows_acc =
      (match json_out with
      | Some path ->
        write_file path
          (Sb_util.Json.to_string (bench_run_json (List.rev rows_acc)))
      | None -> ());
      (match stats with
      | Some s when s.Sb_serve.Resilient.st_reconnects > 0 ->
        Printf.printf "reconnects: %d (rows retried: %d, duplicates dropped: %d)\n"
          s.Sb_serve.Resilient.st_reconnects s.Sb_serve.Resilient.st_rows_retried
          s.Sb_serve.Resilient.st_duplicates
      | _ -> ());
      match outcome with
      | Sb_serve.Client.Completed { rows; failed = 0 } ->
        Printf.printf "done: %d rows\n" rows;
        0
      | Sb_serve.Client.Completed { rows; failed } ->
        Printf.eprintf "done with failures: %d rows, %d failed\n" rows failed;
        1
      | Sb_serve.Client.Was_cancelled { dropped } ->
        Printf.printf "cancelled: %d cells dropped\n" dropped;
        if cancel_after <> None then 0 else 1
      | Sb_serve.Client.Server_bye reason ->
        Printf.eprintf "server shut down mid-job: %s\n" reason;
        1
    in
    if status then
      with_conn (fun conn ->
          match Sb_serve.Client.status conn with
          | Ok j ->
            print_endline (Sb_util.Json.to_string j);
            0
          | Error err ->
            prerr_endline (Sb_serve.Client.error_message err);
            err_exit err)
    else if dump then
      with_conn (fun conn ->
          match Sb_serve.Client.dump conn with
          | Ok (_source, cells) ->
            print_endline (Sb_util.Json.to_string (bench_run_json cells));
            0
          | Error err ->
            prerr_endline (Sb_serve.Client.error_message err);
            err_exit err)
    else if stop then
      with_conn (fun conn ->
          match Sb_serve.Client.shutdown conn with
          | Ok () -> 0
          | Error err ->
            prerr_endline (Sb_serve.Client.error_message err);
            err_exit err)
    else begin
      let specs =
        match (spec_file, cells) with
        | Some file, [] -> specs_of_file file
        | None, (_ :: _ as names) ->
          Ok
            (List.map
               (fun name ->
                 {
                   Sb_serve.Protocol.sp_bench = name;
                   sp_engine = engine;
                   sp_arch = arch;
                   sp_iters = iters;
                   sp_repeats = repeats;
                 })
               names)
        | Some _, _ :: _ -> Error "give a spec file or --cell, not both"
        | None, [] ->
          Error
            "nothing to do: give a spec file, --cell, --status, --dump or \
             --stop"
      in
      match specs with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok specs -> (
        let id =
          match id with
          | Some id -> id
          | None -> Printf.sprintf "job-%d" (Unix.getpid ())
        in
        let rows = ref [] in
        match cancel_after with
        | Some _ ->
          (* the cancellation path drives one connection by hand; a
             reconnect would defeat the point of the test *)
          with_conn (fun conn ->
              let on_row ~key:_ ~cached cell =
                rows := cell :: !rows;
                print_row ~cached cell
              in
              match
                Sb_serve.Client.submit ?cancel_after ~on_row conn ~id
                  ~cells:specs
              with
              | Error err ->
                prerr_endline (Sb_serve.Client.error_message err);
                err_exit err
              | Ok outcome -> report_outcome outcome !rows)
        | None -> (
          let cfg =
            {
              Sb_serve.Resilient.default_config with
              Sb_serve.Resilient.retries;
              backoff;
              seed = Unix.getpid ();
            }
          in
          let on_row ~key:_ ~cached ~retried cell =
            rows := cell :: !rows;
            print_row ~retried ~cached cell
          in
          let on_event msg = Printf.eprintf "client: %s\n%!" msg in
          match
            Sb_serve.Resilient.submit ~cfg ~on_event ~on_row ~addr ~id
              ~cells:specs ()
          with
          | Error err -> fail err
          | Ok { Sb_serve.Resilient.ended; stats } ->
            report_outcome ~stats ended !rows))
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running benchmark service: submit jobs (spec file or \
          inline --cell), stream rows, cancel mid-run, query status, or \
          dump the server's accumulated rows as a bench-schema run.")
    Term.(
      const action $ connect_arg $ spec_arg $ cell_arg $ arch_arg $ engine_arg
      $ iters_arg $ repeats_arg $ id_arg $ cancel_after_arg $ wait_arg
      $ status_arg $ dump_arg $ stop_arg $ json_arg $ retries_arg
      $ backoff_arg)

(* ---- fsck ---- *)

let fsck_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Cache/checkpoint/baseline directory to check.")
  in
  let repair_arg =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Evict damaged entries (truncated, key-mismatched, stale temp \
             files); the store degrades to cache misses instead of poisoning \
             a run.  Good entries are never touched.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable report on stdout.")
  in
  let action dir repair json =
    match Sb_jobs.Fsck.scan ~repair ~dir () with
    | Error msg ->
      Printf.eprintf "fsck: %s\n" msg;
      2
    | Ok r ->
      if json then
        print_endline (Sb_util.Json.to_string (Sb_jobs.Fsck.report_to_json r))
      else begin
        List.iter
          (fun e ->
            if e.Sb_jobs.Fsck.verdict <> Sb_jobs.Fsck.Ok_entry then
              Printf.printf "%-12s %s%s\n"
                (Sb_jobs.Fsck.verdict_name e.Sb_jobs.Fsck.verdict)
                e.Sb_jobs.Fsck.file
                (if e.Sb_jobs.Fsck.detail = "" then ""
                 else " (" ^ e.Sb_jobs.Fsck.detail ^ ")"))
          r.Sb_jobs.Fsck.entries;
        Printf.printf
          "fsck %s: %d ok, %d truncated, %d key-mismatch, %d stale-tmp, %d \
           live-tmp%s\n"
          r.Sb_jobs.Fsck.dir r.Sb_jobs.Fsck.ok r.Sb_jobs.Fsck.truncated
          r.Sb_jobs.Fsck.key_mismatch r.Sb_jobs.Fsck.stale_tmp
          r.Sb_jobs.Fsck.live_tmp
          (if repair then
             Printf.sprintf " (%d repaired, %d unrepairable)"
               r.Sb_jobs.Fsck.repaired r.Sb_jobs.Fsck.unrepairable
           else "")
      end;
      if r.Sb_jobs.Fsck.unrepairable > 0 then 2
      else if repair || Sb_jobs.Fsck.clean r then 0
      else 1
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check (and with --repair, heal) a result-store directory: classify \
          every entry as ok, truncated, key-mismatched or a stale temp file. \
          Exits 0 when clean or fully repaired, 1 when damage was found \
          without --repair, 2 on unrepairable damage.")
    Term.(const action $ dir_arg $ repair_arg $ json_arg)

(* ---- chaos-proxy ---- *)

let chaos_proxy_cmd =
  let listen_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Address to accept clients on (unix:PATH or tcp:PORT).")
  in
  let upstream_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "upstream" ] ~docv:"ADDR"
          ~doc:"The real server's address.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Fault-schedule seed: the same seed replays the same resets, \
             corruptions and delays.")
  in
  let reset_arg =
    Arg.(
      value
      & opt (pair ~sep:',' int int) (0, 0)
      & info [ "reset-after" ] ~docv:"MIN,MAX"
          ~doc:
            "Inject a mid-message connection reset every MIN..MAX forwarded \
             bytes per direction; 0,0 disables.")
  in
  let corrupt_arg =
    Arg.(
      value
      & opt (pair ~sep:',' int int) (0, 0)
      & info [ "corrupt-after" ] ~docv:"MIN,MAX"
          ~doc:
            "Corrupt one byte (to NUL — never valid frame JSON, so always \
             detected) every MIN..MAX forwarded bytes; 0,0 disables.")
  in
  let delay_arg =
    Arg.(
      value & opt float 0.0
      & info [ "max-delay" ] ~docv:"SECS"
          ~doc:"Upper bound of injected per-chunk delays; 0 disables.")
  in
  let chunk_arg =
    Arg.(
      value & opt int 256
      & info [ "chunk" ] ~docv:"BYTES"
          ~doc:"Max bytes forwarded per read (small values force partial \
                frames).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Log injected faults to stderr.")
  in
  let action listen upstream seed reset_after corrupt_after max_delay chunk
      verbose =
    let cfg =
      {
        Sb_serve.Chaosproxy.listen;
        upstream;
        seed;
        reset_after;
        corrupt_after;
        max_delay;
        chunk;
        verbose;
      }
    in
    match Sb_serve.Chaosproxy.create cfg with
    | exception Invalid_argument msg ->
      prerr_endline msg;
      2
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "chaos-proxy: %s %s: %s\n" fn arg (Unix.error_message e);
      2
    | t ->
      Sb_serve.Chaosproxy.run t;
      0
  in
  Cmd.v
    (Cmd.info "chaos-proxy"
       ~doc:
         "Run a seeded transport-chaos proxy in front of the benchmark \
          service: partial frames, bounded delays, mid-message resets and \
          byte corruption, replayable per seed.  What the resilient client \
          and the CI chaos-soak gate are tested against.  SIGTERM exits \
          cleanly.")
    Term.(
      const action $ listen_arg $ upstream_arg $ seed_arg $ reset_arg
      $ corrupt_arg $ delay_arg $ chunk_arg $ verbose_arg)

(* ---- baseline / compare ---- *)

(* baseline/compare accept "serve:ADDR" run paths: the rows are pulled from
   a live server's dump instead of a file or --json directory. *)
let load_run path =
  let prefix = "serve:" in
  if
    String.length path > String.length prefix
    && String.sub path 0 (String.length prefix) = prefix
  then
    let addr =
      String.sub path (String.length prefix)
        (String.length path - String.length prefix)
    in
    match Sb_serve.Client.connect addr with
    | Error err -> Error (Sb_serve.Client.error_message err)
    | Ok conn ->
      let r =
        Result.map_error Sb_serve.Client.error_message
          (Sb_serve.Client.dump conn)
      in
      Sb_serve.Client.close conn;
      Result.bind r (fun (_source, cells) ->
          List.fold_left
            (fun acc c ->
              Result.bind acc (fun acc ->
                  Result.map
                    (fun cell -> cell :: acc)
                    (Sb_regress.Baseline.cell_of_json ~source:path
                       ~experiment:"serve" c)))
            (Ok []) cells
          |> Result.map (fun cells ->
                 { Sb_regress.Regress.source = path; cells = List.rev cells }))
  else Sb_regress.Baseline.load path

let baseline_cmd =
  let json_dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "json" ] ~docv:"DIR"
          ~doc:
            "Run to snapshot: a BENCH_*.json directory written by \
             bench/main.exe --json DIR, a single run file, or serve:ADDR to \
             pull the rows from a live benchmark service.")
  in
  let out_arg =
    Arg.(
      value & opt string "baseline.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Snapshot file to write.")
  in
  let action dir out =
    match load_run dir with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok run ->
      Sb_regress.Baseline.write_snapshot ~out run;
      Printf.printf "baseline: %d cells from %s -> %s\n"
        (List.length run.Sb_regress.Regress.cells)
        dir out;
      0
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:
         "Merge a --json run directory into one schema-tagged snapshot file \
          (the thing to check in as a CI regression baseline; see \
          docs/regress.md).")
    Term.(const action $ json_dir_arg $ out_arg)

let compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:
            "Baseline run: a snapshot file, a --json directory, or \
             serve:ADDR for a live benchmark service.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW"
          ~doc:
            "Candidate run: a snapshot file, a --json directory, or \
             serve:ADDR for a live benchmark service.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float (Sb_regress.Regress.default_threshold *. 100.)
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Minimum effect size in percent; smaller shifts are reported as \
             unchanged regardless of significance (host jitter on short \
             cells is typically 5-10%).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit 1 if any confirmed regression remains (the CI gate mode).")
  in
  let all_cells_arg =
    Arg.(
      value & flag
      & info [ "all-cells" ] ~doc:"Render every paired cell, not only the changed ones.")
  in
  let old_engine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "old-engine" ] ~docv:"ENGINE"
          ~doc:
            "Restrict OLD to one engine label (e.g. dbt:v1.7.0) and pair \
             cells across engine labels — compares two engine \
             configurations out of the same recorded sweep.")
  in
  let new_engine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "new-engine" ] ~docv:"ENGINE"
          ~doc:"Restrict NEW to one engine label (see --old-engine).")
  in
  (* Recorded rows carry the canonical label for each DBT configuration
     (release aliases such as v2.5.0-rc1/-rc2 share v2.5.0-rc0's config),
     so resolve a requested "dbt:NAME" through the version table before
     filtering: --new-engine dbt:v2.5.0-rc2 matches dbt:v2.5.0-rc0 rows. *)
  let canonical_engine label =
    match String.index_opt label ':' with
    | Some i when String.sub label 0 i = "dbt" ->
      let version = String.sub label (i + 1) (String.length label - i - 1) in
      (match Sb_dbt.Version.find version with
      | None -> label
      | Some config ->
        (match
           List.find_opt (fun (_, c) -> c = config) Sb_dbt.Version.all
         with
        | Some (name, _) -> "dbt:" ^ name
        | None -> label))
    | _ -> label
  in
  let action old_path new_path threshold json strict all_cells old_engine
      new_engine =
    if threshold < 0. then begin
      prerr_endline "--threshold must be non-negative";
      2
    end
    else
      match (load_run old_path, load_run new_path) with
      | Error msg, _ | _, Error msg ->
        prerr_endline msg;
        2
      | Ok old_run, Ok new_run ->
        let apply_filter run = function
          | None -> run
          | Some engine ->
            Sb_regress.Baseline.filter_engine run (canonical_engine engine)
        in
        let old_run = apply_filter old_run old_engine in
        let new_run = apply_filter new_run new_engine in
        let ignore_engine = old_engine <> None || new_engine <> None in
        let report =
          Sb_regress.Regress.compare_runs ~threshold:(threshold /. 100.)
            ~ignore_engine ~old_run ~new_run ()
        in
        if json then
          print_endline
            (Sb_util.Json.to_string (Sb_regress.Regress.to_json report))
        else print_string (Sb_regress.Regress.render ~all_cells report);
        Sb_regress.Regress.exit_code ~strict report
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Statistically compare two recorded benchmark runs: classify every \
          paired cell as regressed / improved / unchanged using the \
          recorded repeats (t-based confidence-interval overlap plus a \
          minimum-effect threshold) and attribute shifts to mechanism \
          categories.")
    Term.(
      const action $ old_arg $ new_arg $ threshold_arg $ json_arg $ strict_arg
      $ all_cells_arg $ old_engine_arg $ new_engine_arg)

(* ---- report ---- *)

let report_cmd =
  let figs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FIG" ~doc:"Figures to regenerate (fig2..fig8); all by default.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Cheap settings for a smoke run.")
  in
  let report_switch_arg =
    Arg.(
      value
      & opt (some switch_at_conv) None
      & info [ "switch-at" ] ~docv:"POINT"
          ~doc:
            "Checkpointed fast-forward for every grid cell: run (or \
             restore) setup up to $(docv) and start the timed engine \
             there.  Pair with $(b,--cache) to persist the warm boots.")
  in
  let report_cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Persist measured cells (and, with $(b,--switch-at), setup \
             checkpoints) to $(docv).")
  in
  let action quick switch_at cache_dir figs =
    let config =
      if quick then Sb_report.Experiments.quick_config
      else Sb_report.Experiments.default_config
    in
    let config = { config with Sb_report.Experiments.switch_at } in
    let opts = { Sb_report.Experiments.sequential with cache_dir } in
    let all =
      [
        ("fig2", fun () -> Sb_report.Experiments.fig2 ~config ~opts ());
        ("fig3", fun () -> Sb_report.Experiments.fig3 ~config ());
        ("fig4", fun () -> Sb_report.Experiments.fig4 ());
        ("fig5", fun () -> Sb_report.Experiments.fig5 ());
        ("fig6", fun () -> Sb_report.Experiments.fig6 ~config ~opts ());
        ("fig7", fun () -> Sb_report.Experiments.fig7 ~config ~opts ());
        ("fig8", fun () -> Sb_report.Experiments.fig8 ~config ~opts ());
      ]
    in
    let selected = if figs = [] then List.map fst all else figs in
    List.fold_left
      (fun code name ->
        match List.assoc_opt name all with
        | Some f ->
          print_endline (f ());
          code
        | None ->
          Printf.eprintf "unknown figure %S\n" name;
          1)
      0 selected
  in
  Cmd.v (Cmd.info "report" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const action $ quick_arg $ report_switch_arg $ report_cache_arg $ figs_arg)

let () =
  let doc = "SimBench: targeted micro-benchmarks for full-system simulators" in
  let info = Cmd.info "simbench" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [
         list_cmd; run_cmd; suite_cmd; workload_cmd; disasm_cmd; verify_cmd;
         chaos_cmd; lint_cmd; tv_cmd; debug_cmd; report_cmd; baseline_cmd;
         compare_cmd; serve_cmd; client_cmd; fsck_cmd; chaos_proxy_cmd;
       ]))
